/**
 * @file
 * des_determinism_contract: the conservative parallel DES engine
 * changes no observable behaviour, end to end.
 *
 *  - An island-decomposed deployment (S=4 shared-nothing instances
 *    coupled by cross-island coordination traffic) produces
 *    bit-identical digests on the shared-queue oracle and on the
 *    parallel path at worker counts {1, 2, 4, 7}.
 *  - S=1 on an external island queue is the serial engine: it matches
 *    a standalone internally-queued System run of the same
 *    configuration commit for commit.
 *  - RunKnobs::desThreads is a host-execution knob: full
 *    ExperimentRunner grid points are bit-identical at any value
 *    (what keeps the golden study CSVs byte-stable under
 *    --des-threads).
 *
 * Its own binary/ctest entry, like fault_inertness_contract and
 * islands_topology_contract: every case is a full (if short)
 * simulation, shared across assertions where possible.
 */

#include <gtest/gtest.h>

#include "core/des_grid.hh"
#include "core/experiment.hh"
#include "db/database.hh"
#include "odb/workload.hh"
#include "os/system.hh"
#include "sim/parallel_engine.hh"

namespace
{

using namespace odbsim;
using core::DesGridConfig;
using core::DesGridResult;
using core::runDesGridPoint;

DesGridConfig
smallDeployment()
{
    DesGridConfig cfg;
    cfg.islands = 4;
    cfg.warehousesPerIsland = 2;
    cfg.cpusPerIsland = 2;
    cfg.clientsPerIsland = 6;
    cfg.warmup = ticksFromMs(20.0);
    cfg.measure = ticksFromMs(60.0);
    cfg.seed = 1234;
    cfg.coordIntervalUs = 150.0;
    return cfg;
}

TEST(DesDeterminismContract, OracleVsParallelAtWorkerCounts1247)
{
    DesGridConfig cfg = smallDeployment();
    cfg.oracle = true;
    const DesGridResult oracle = runDesGridPoint(cfg);

    // The deployment must actually commit work and actually exchange
    // cross-island traffic, or the contract is vacuous.
    ASSERT_GT(oracle.committed, 0u);
    ASSERT_GT(oracle.crossDelivered, 0u);
    ASSERT_GT(oracle.epochBarriers, 0u);
    std::uint64_t coord_total = 0;
    for (std::uint64_t c : oracle.coordReceived)
        coord_total += c;
    ASSERT_GT(coord_total, 0u);

    cfg.oracle = false;
    for (unsigned workers : {1u, 2u, 4u, 7u}) {
        cfg.desThreads = workers;
        const DesGridResult par = runDesGridPoint(cfg);
        EXPECT_EQ(par.digest, oracle.digest) << "workers=" << workers;
        EXPECT_EQ(par.committed, oracle.committed)
            << "workers=" << workers;
        EXPECT_EQ(par.committedPerIsland, oracle.committedPerIsland);
        EXPECT_EQ(par.coordReceived, oracle.coordReceived);
        EXPECT_EQ(par.eventsFired, oracle.eventsFired);
        EXPECT_EQ(par.crossSent, oracle.crossSent);
        EXPECT_EQ(par.crossDelivered, oracle.crossDelivered);
        EXPECT_EQ(par.epochBarriers, oracle.epochBarriers);
        EXPECT_EQ(par.lookahead, oracle.lookahead);
    }
}

TEST(DesDeterminismContract, SingleIslandMatchesStandaloneSystem)
{
    // Replicate exactly what runDesGridPoint builds for island 0 of a
    // one-island deployment, but on a plain internally-queued System
    // driven by runFor — the pre-engine serial path.
    const DesGridConfig cfg = [] {
        DesGridConfig c = smallDeployment();
        c.islands = 1;
        return c;
    }();
    const std::uint64_t iseed = core::desIslandSeed(cfg.seed, 0);
    const core::MachinePreset preset = core::makeMachine(
        cfg.machine, cfg.cpusPerIsland, cfg.samplePeriod, iseed);

    os::System sys(preset.sys);
    ASSERT_FALSE(sys.externallyQueued());
    db::DatabaseConfig dbcfg;
    dbcfg.schema.warehouses = cfg.warehousesPerIsland;
    dbcfg.schema.seed = iseed;
    dbcfg.cacheWarehouseEquivalents = preset.cacheWarehouseEquivalents;
    db::Database database(sys, dbcfg);
    database.start();
    odb::WorkloadConfig wcfg;
    wcfg.clients = cfg.clientsPerIsland;
    wcfg.seed = iseed * 7919 + cfg.warehousesPerIsland;
    odb::OdbWorkload workload(database, wcfg);
    workload.start();
    database.instantWarm({}, 1);
    sys.runUntil(cfg.warmup);
    sys.beginMeasurement();
    workload.resetStats();
    database.resetStats();
    sys.runUntil(cfg.warmup + cfg.measure);

    const DesGridResult one = runDesGridPoint(cfg);
    EXPECT_EQ(one.islands, 1u);
    EXPECT_EQ(one.lookahead, 0u);
    EXPECT_EQ(one.crossSent, 0u);
    EXPECT_EQ(one.committed, workload.committed());
    EXPECT_EQ(one.eventsFired, sys.eq().eventsFired());
}

TEST(DesDeterminismContract, ExternallyQueuedSystemRefusesRunFor)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EventQueue external;
            const core::MachinePreset preset =
                core::makeMachine(core::MachineKind::XeonQuadMp, 1, 16, 1);
            os::System sys(preset.sys, &external);
            sys.runFor(100);
        },
        "advance time through the owning ParallelEngine");
}

TEST(DesDeterminismContract, DesThreadsIsInvisibleInStudyOutput)
{
    // A full paper grid point through ExperimentRunner: one island,
    // so any --des-threads value must leave every metric bit-exact.
    core::OltpConfiguration grid;
    grid.warehouses = 2;
    grid.processors = 2;
    core::RunKnobs knobs;
    knobs.warmup = ticksFromMs(20.0);
    knobs.measure = ticksFromMs(60.0);
    knobs.seed = 99;

    knobs.desThreads = 1;
    const core::RunResult base = core::ExperimentRunner::run(grid, knobs);
    ASSERT_GT(base.txnsCommitted, 0u);
    for (unsigned threads : {2u, 4u, 7u}) {
        knobs.desThreads = threads;
        const core::RunResult r = core::ExperimentRunner::run(grid, knobs);
        EXPECT_EQ(r.txnsCommitted, base.txnsCommitted)
            << "desThreads=" << threads;
        EXPECT_EQ(r.eventsFired, base.eventsFired);
        EXPECT_DOUBLE_EQ(r.tps, base.tps);
        EXPECT_DOUBLE_EQ(r.cpi, base.cpi);
        EXPECT_DOUBLE_EQ(r.mpi, base.mpi);
        EXPECT_DOUBLE_EQ(r.ipx, base.ipx);
    }
}

} // namespace
