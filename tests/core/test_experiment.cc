/**
 * @file
 * Integration tests for the experiment runner — one full measured
 * configuration, checked for internal consistency.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

RunKnobs
fastKnobs()
{
    RunKnobs k;
    k.warmup = ticksFromSeconds(0.1);
    k.measure = ticksFromSeconds(0.3);
    return k;
}

OltpConfiguration
smallCfg()
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 2;
    return cfg;
}

TEST(ExperimentRunner, ProducesConsistentMetrics)
{
    const RunResult r = ExperimentRunner::run(smallCfg(), fastKnobs());
    EXPECT_EQ(r.warehouses, 10u);
    EXPECT_EQ(r.processors, 2u);
    EXPECT_EQ(r.clients, 10u); // Table 1 value for (10 W, 2P).
    EXPECT_GT(r.txnsCommitted, 50u);
    EXPECT_GT(r.tps, 0.0);
    EXPECT_GT(r.cpuUtil, 0.5);
    EXPECT_LE(r.cpuUtil, 1.0);
    EXPECT_GT(r.cpi, 1.0);
    EXPECT_LT(r.cpi, 20.0);
    EXPECT_GT(r.ipx, 3e5);
    EXPECT_LT(r.ipx, 1e7);
    EXPECT_GT(r.mpi, 0.0);
    EXPECT_GT(r.bufferHitRatio, 0.9); // Cached setup.
}

TEST(ExperimentRunner, IronLawSelfConsistency)
{
    // The measured TPS must equal the iron-law prediction from the
    // measured IPX/CPI/utilization (the model is exact by
    // construction — this validates the accounting plumbing).
    const RunResult r = ExperimentRunner::run(smallCfg(), fastKnobs());
    EXPECT_NEAR(r.tps, r.ironLawTps, 0.05 * r.tps);
}

TEST(ExperimentRunner, ModeSplitsAddUp)
{
    const RunResult r = ExperimentRunner::run(smallCfg(), fastKnobs());
    EXPECT_NEAR(r.ipx, r.ipxUser + r.ipxOs, 1e-6 * r.ipx);
    EXPECT_GT(r.osInstrShare, 0.0);
    EXPECT_LT(r.osInstrShare, 0.5);
    EXPECT_GT(r.osCycleShare, 0.0);
    EXPECT_LT(r.osCycleShare, 0.5);
}

TEST(ExperimentRunner, BreakdownTotalsMatchCpi)
{
    const RunResult r = ExperimentRunner::run(smallCfg(), fastKnobs());
    EXPECT_NEAR(r.breakdown.total(), r.cpi, 1e-9);
    EXPECT_GT(r.breakdown.l3Share(), 0.3); // L3 dominates (paper ~60%).
    EXPECT_DOUBLE_EQ(r.breakdown.inst, 0.5);
}

TEST(ExperimentRunner, ExplicitClientCountRespected)
{
    OltpConfiguration cfg = smallCfg();
    cfg.clients = 3;
    const RunResult r = ExperimentRunner::run(cfg, fastKnobs());
    EXPECT_EQ(r.clients, 3u);
}

TEST(ExperimentRunner, DeterministicForSeed)
{
    const RunResult a = ExperimentRunner::run(smallCfg(), fastKnobs());
    const RunResult b = ExperimentRunner::run(smallCfg(), fastKnobs());
    EXPECT_EQ(a.txnsCommitted, b.txnsCommitted);
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    EXPECT_DOUBLE_EQ(a.mpi, b.mpi);
}

TEST(ExperimentRunner, SeedChangesPerturbOnlySlightly)
{
    RunKnobs k1 = fastKnobs(), k2 = fastKnobs();
    k2.seed = 4242;
    const RunResult a = ExperimentRunner::run(smallCfg(), k1);
    const RunResult b = ExperimentRunner::run(smallCfg(), k2);
    EXPECT_NEAR(a.cpi, b.cpi, 0.2 * a.cpi);
    EXPECT_NEAR(a.tps, b.tps, 0.2 * a.tps);
}

TEST(ExperimentRunner, Itanium2MachineRuns)
{
    OltpConfiguration cfg = smallCfg();
    cfg.machine = MachineKind::Itanium2Quad;
    const RunResult r = ExperimentRunner::run(cfg, fastKnobs());
    EXPECT_GT(r.tps, 0.0);
    EXPECT_GT(r.cpi, 0.5);
}

TEST(ExperimentRunner, MoreProcessorsMoreThroughputWhenCached)
{
    RunKnobs k = fastKnobs();
    OltpConfiguration one = smallCfg(), four = smallCfg();
    one.processors = 1;
    four.processors = 4;
    const RunResult r1 = ExperimentRunner::run(one, k);
    const RunResult r4 = ExperimentRunner::run(four, k);
    EXPECT_GT(r4.tps, 2.0 * r1.tps);
}

} // namespace
