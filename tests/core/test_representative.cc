/**
 * @file
 * Tests for the representative-configuration selector (Section 6.2),
 * on synthetic study results.
 */

#include <gtest/gtest.h>

#include "core/representative.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

/** Build a synthetic study with known CPI/MPI pivots. */
StudyResult
syntheticStudy(double pivot_w)
{
    StudyResult study;
    for (unsigned p : {1u, 2u, 4u}) {
        StudySeries s;
        s.processors = p;
        for (double w : {10., 25., 50., 75., 100., 150., 200., 300.,
                         400., 600., 800.}) {
            RunResult r;
            r.warehouses = static_cast<unsigned>(w);
            r.processors = p;
            const double base = 2.0 + 0.1 * p;
            if (w < pivot_w) {
                r.cpi = base + 0.02 * w;
                r.mpi = 0.004 + 0.0001 * w;
            } else {
                r.cpi = base + 0.02 * pivot_w + 0.001 * (w - pivot_w);
                r.mpi = 0.004 + 0.0001 * pivot_w +
                        0.000005 * (w - pivot_w);
            }
            s.points.push_back(r);
        }
        study.series.push_back(std::move(s));
    }
    return study;
}

TEST(Representative, RecoversPivotsPerProcessorCount)
{
    const StudyResult study = syntheticStudy(120.0);
    const Recommendation rec = RepresentativeConfigSelector::select(study);
    ASSERT_EQ(rec.pivots.size(), 3u);
    for (const PivotRow &row : rec.pivots) {
        EXPECT_NEAR(row.cpiPivotW, 120.0, 40.0);
        EXPECT_NEAR(row.mpiPivotW, 120.0, 40.0);
    }
}

TEST(Representative, RecommendationPadsAndRounds)
{
    const StudyResult study = syntheticStudy(120.0);
    const Recommendation rec =
        RepresentativeConfigSelector::select(study, 1.3, 50);
    EXPECT_GE(rec.recommendedW,
              static_cast<unsigned>(rec.maxPivotW));
    EXPECT_EQ(rec.recommendedW % 50, 0u);
    // For pivots near 120, the paper proposes ~200 W.
    EXPECT_GE(rec.recommendedW, 150u);
    EXPECT_LE(rec.recommendedW, 250u);
}

TEST(Representative, MaxPivotIsMaxOverRows)
{
    const StudyResult study = syntheticStudy(100.0);
    const Recommendation rec = RepresentativeConfigSelector::select(study);
    for (const PivotRow &row : rec.pivots) {
        EXPECT_LE(row.cpiPivotW, rec.maxPivotW + 1e-9);
        EXPECT_LE(row.mpiPivotW, rec.maxPivotW + 1e-9);
    }
}

TEST(Representative, GranularityOne)
{
    const StudyResult study = syntheticStudy(100.0);
    const Recommendation rec =
        RepresentativeConfigSelector::select(study, 1.0, 1);
    EXPECT_NEAR(static_cast<double>(rec.recommendedW), rec.maxPivotW,
                1.0);
}

TEST(Representative, ForProcessorsLookup)
{
    const StudyResult study = syntheticStudy(100.0);
    EXPECT_EQ(study.forProcessors(2).processors, 2u);
    EXPECT_EQ(study.forProcessors(4).points.size(), 11u);
}

TEST(Representative, ScaledLineExtrapolates)
{
    const StudyResult study = syntheticStudy(120.0);
    const auto fit = study.forProcessors(4).cpiFit();
    // Extrapolate to 1600 W along the scaled line; compare with the
    // synthetic generator's value.
    const double expect = 2.4 + 0.02 * 120.0 + 0.001 * (1600.0 - 120.0);
    EXPECT_NEAR(analysis::extrapolateScaled(fit, 1600.0), expect,
                0.1 * expect);
}

} // namespace
