/**
 * @file
 * Whole-run fault-injection contract tests (docs/FAULTS.md):
 *
 *  - *Inertness*: with the subsystem compiled in but every knob at its
 *    default, a full run fires zero faults, and repeated runs are
 *    bit-identical down to the event count — the plan draws nothing,
 *    schedules nothing, and perturbs nothing. (The cross-version half
 *    of the contract — that these runs also match a build without the
 *    subsystem — is enforced by the golden study CSVs in
 *    scripts/bench_smoke.sh, which predate it.)
 *  - *Determinism*: faulty runs are a pure function of (config, seed),
 *    fault counters included.
 *  - *Crash recovery*: a mid-run instance kill replays redo, reports a
 *    positive MTTR, and the workload keeps committing afterwards.
 *
 * Its own ctest binary: each case is a full (if short) simulation.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

RunKnobs
quickKnobs()
{
    RunKnobs knobs;
    knobs.warmup = ticksFromSeconds(0.05);
    knobs.measure = ticksFromSeconds(0.2);
    return knobs;
}

OltpConfiguration
smallBox()
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 2;
    return cfg;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    // The event count is the strongest whole-run fingerprint: two
    // simulations that fired the same number of events in the same
    // windows and produced identical metrics took the same path.
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_EQ(a.txnsCommitted, b.txnsCommitted);
    EXPECT_EQ(a.tps, b.tps);
    EXPECT_EQ(a.cpuUtil, b.cpuUtil);
    EXPECT_EQ(a.ipx, b.ipx);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.mpi, b.mpi);
    EXPECT_EQ(a.ctxPerTxn, b.ctxPerTxn);
    EXPECT_EQ(a.avgLatencyMs, b.avgLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.bufferHitRatio, b.bufferHitRatio);
    EXPECT_EQ(a.avgDiskUtil, b.avgDiskUtil);
    EXPECT_EQ(a.diskReadLatencyMs, b.diskReadLatencyMs);
    EXPECT_EQ(a.txnAborts, b.txnAborts);
    EXPECT_EQ(a.txnRetries, b.txnRetries);
    EXPECT_EQ(a.lockTimeouts, b.lockTimeouts);
    EXPECT_EQ(a.diskTransientErrors, b.diskTransientErrors);
    EXPECT_EQ(a.driveFailures, b.driveFailures);
    EXPECT_EQ(a.redoReplayedBytes, b.redoReplayedBytes);
    EXPECT_EQ(a.mttrMs, b.mttrMs);
}

void
expectNoFaultsFired(const RunResult &r)
{
    EXPECT_EQ(r.txnAborts, 0u);
    EXPECT_EQ(r.txnRetries, 0u);
    EXPECT_EQ(r.lockTimeouts, 0u);
    EXPECT_EQ(r.diskTransientErrors, 0u);
    EXPECT_EQ(r.driveFailures, 0u);
    EXPECT_EQ(r.redoReplayedBytes, 0u);
    EXPECT_EQ(r.mttrMs, 0.0);
    EXPECT_EQ(r.tpsPreCrash, 0.0);
    EXPECT_EQ(r.tpsPostRecovery, 0.0);
}

TEST(FaultContract, DefaultPlanFiresNothingAndRunsAreBitIdentical)
{
    const RunResult a = ExperimentRunner::run(smallBox(), quickKnobs());
    const RunResult b = ExperimentRunner::run(smallBox(), quickKnobs());
    EXPECT_GT(a.txnsCommitted, 0u);
    expectNoFaultsFired(a);
    expectBitIdentical(a, b);
}

TEST(FaultContract, FaultyRunDiffersAndReportsItsInjections)
{
    RunKnobs faulty = quickKnobs();
    faulty.faults.diskTransientProb = 0.2;
    faulty.faults.txnAbortProb = 0.05;
    faulty.faults.lockWaitTimeoutMs = 5.0;
    faulty.faults.clientRetryBackoffMs = 0.5;

    const RunResult base = ExperimentRunner::run(smallBox(), quickKnobs());
    const RunResult r = ExperimentRunner::run(smallBox(), faulty);

    EXPECT_GT(r.txnsCommitted, 0u); // Degraded, not dead.
    EXPECT_GT(r.txnAborts, 0u);
    EXPECT_GT(r.txnRetries, 0u);
    EXPECT_GT(r.diskTransientErrors, 0u);
    // Every abort schedules a retry (crash parking also counts as an
    // abort+retry, but this run never crashes).
    EXPECT_EQ(r.txnRetries, r.txnAborts);
    // Wasted replay work and retry backoff cost real throughput.
    EXPECT_NE(r.tps, base.tps);
    EXPECT_NE(r.eventsFired, base.eventsFired);
}

TEST(FaultContract, FaultyRunsAreSeedDeterministic)
{
    RunKnobs faulty = quickKnobs();
    faulty.faults.diskTransientProb = 0.1;
    faulty.faults.txnAbortProb = 0.05;
    faulty.faults.lockWaitTimeoutMs = 10.0;

    const RunResult a = ExperimentRunner::run(smallBox(), faulty);
    const RunResult b = ExperimentRunner::run(smallBox(), faulty);
    EXPECT_GT(a.txnAborts, 0u);
    expectBitIdentical(a, b);
}

TEST(FaultContract, CrashRecoveryReplaysRedoAndResumes)
{
    RunKnobs knobs = quickKnobs();
    // Warm-up ends at 50 ms + 10 warehouses * 4 ms = 90 ms; the kill
    // at 150 ms lands mid-measurement with room to recover before the
    // run ends at 290 ms.
    knobs.faults.crashAtMs = 150.0;
    knobs.faults.recoveryRedoCapMb = 1.0;

    const RunResult r = ExperimentRunner::run(smallBox(), knobs);
    EXPECT_GT(r.mttrMs, 0.0);
    EXPECT_GT(r.redoReplayedBytes, 0u);
    EXPECT_GT(r.tpsPreCrash, 0.0);
    EXPECT_GT(r.txnsCommitted, 0u);

    // Determinism holds across the crash/recovery path too.
    const RunResult again = ExperimentRunner::run(smallBox(), knobs);
    expectBitIdentical(r, again);
}

} // namespace
