/**
 * @file
 * Determinism contract of the parallel scaling-study executor: for the
 * same StudyConfig, jobs=1 (legacy serial path) and jobs=4 (worker
 * pool) must produce bit-identical StudyResults — every grid point is
 * an independent simulation whose RNG streams derive from the per-run
 * seed, and results are collected by grid index, not completion order.
 */

#include <gtest/gtest.h>

#include "core/scaling_study.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

StudyConfig
smallGrid(unsigned jobs)
{
    StudyConfig cfg;
    cfg.warehouses = {10, 25, 50};
    cfg.processors = {1, 2};
    cfg.knobs.warmup = ticksFromSeconds(0.05);
    cfg.knobs.measure = ticksFromSeconds(0.2);
    cfg.jobs = jobs;
    return cfg;
}

void
expectBitIdentical(const perfmon::EventReading &a,
                   const perfmon::EventReading &b, const char *what)
{
    EXPECT_EQ(a.user, b.user) << what;
    EXPECT_EQ(a.os, b.os) << what;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.warehouses, b.warehouses);
    EXPECT_EQ(a.processors, b.processors);
    EXPECT_EQ(a.clients, b.clients);

    EXPECT_EQ(a.measureSeconds, b.measureSeconds);
    EXPECT_EQ(a.txnsCommitted, b.txnsCommitted);
    EXPECT_EQ(a.tps, b.tps);
    EXPECT_EQ(a.ironLawTps, b.ironLawTps);

    EXPECT_EQ(a.cpuUtil, b.cpuUtil);
    EXPECT_EQ(a.osCycleShare, b.osCycleShare);
    EXPECT_EQ(a.osInstrShare, b.osInstrShare);

    EXPECT_EQ(a.ipx, b.ipx);
    EXPECT_EQ(a.ipxUser, b.ipxUser);
    EXPECT_EQ(a.ipxOs, b.ipxOs);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.cpiUser, b.cpiUser);
    EXPECT_EQ(a.cpiOs, b.cpiOs);
    EXPECT_EQ(a.mpi, b.mpi);
    EXPECT_EQ(a.mpiUser, b.mpiUser);
    EXPECT_EQ(a.mpiOs, b.mpiOs);

    EXPECT_EQ(a.diskReadKbPerTxn, b.diskReadKbPerTxn);
    EXPECT_EQ(a.diskWriteKbPerTxn, b.diskWriteKbPerTxn);
    EXPECT_EQ(a.logKbPerTxn, b.logKbPerTxn);
    EXPECT_EQ(a.diskReadsPerTxn, b.diskReadsPerTxn);
    EXPECT_EQ(a.ctxPerTxn, b.ctxPerTxn);
    EXPECT_EQ(a.avgLatencyMs, b.avgLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.bufferHitRatio, b.bufferHitRatio);
    EXPECT_EQ(a.avgDiskUtil, b.avgDiskUtil);
    EXPECT_EQ(a.diskReadLatencyMs, b.diskReadLatencyMs);

    EXPECT_EQ(a.busUtil, b.busUtil);
    EXPECT_EQ(a.ioqCycles, b.ioqCycles);
    EXPECT_EQ(a.coherenceShareOfL3, b.coherenceShareOfL3);

    EXPECT_EQ(a.breakdown.inst, b.breakdown.inst);
    EXPECT_EQ(a.breakdown.branch, b.breakdown.branch);
    EXPECT_EQ(a.breakdown.tlb, b.breakdown.tlb);
    EXPECT_EQ(a.breakdown.tc, b.breakdown.tc);
    EXPECT_EQ(a.breakdown.l2, b.breakdown.l2);
    EXPECT_EQ(a.breakdown.l3, b.breakdown.l3);
    EXPECT_EQ(a.breakdown.other, b.breakdown.other);

    expectBitIdentical(a.counters.instructions, b.counters.instructions,
                       "instructions");
    expectBitIdentical(a.counters.cycles, b.counters.cycles, "cycles");
    expectBitIdentical(a.counters.branchMispredicts,
                       b.counters.branchMispredicts, "branchMispredicts");
    expectBitIdentical(a.counters.tlbMisses, b.counters.tlbMisses,
                       "tlbMisses");
    expectBitIdentical(a.counters.tcMisses, b.counters.tcMisses,
                       "tcMisses");
    expectBitIdentical(a.counters.l2Misses, b.counters.l2Misses,
                       "l2Misses");
    expectBitIdentical(a.counters.l3Misses, b.counters.l3Misses,
                       "l3Misses");
    expectBitIdentical(a.counters.coherenceMisses,
                       b.counters.coherenceMisses, "coherenceMisses");
    EXPECT_EQ(a.counters.busUtilization, b.counters.busUtilization);
    EXPECT_EQ(a.counters.ioqCycles, b.counters.ioqCycles);
}

TEST(StudyParallel, SerialAndParallelResultsAreBitIdentical)
{
    unsigned serial_points = 0;
    StudyConfig serial_cfg = smallGrid(1);
    serial_cfg.onPoint = [&](const RunResult &) { ++serial_points; };
    const StudyResult serial = ScalingStudy::run(serial_cfg);

    unsigned parallel_points = 0; // onPoint is mutex-serialized
    StudyConfig parallel_cfg = smallGrid(4);
    parallel_cfg.onPoint = [&](const RunResult &) { ++parallel_points; };
    const StudyResult parallel = ScalingStudy::run(parallel_cfg);

    const unsigned total = static_cast<unsigned>(
        serial_cfg.warehouses.size() * serial_cfg.processors.size());
    EXPECT_EQ(serial_points, total);
    EXPECT_EQ(parallel_points, total);

    ASSERT_EQ(serial.series.size(), parallel.series.size());
    for (std::size_t si = 0; si < serial.series.size(); ++si) {
        const auto &s = serial.series[si];
        const auto &p = parallel.series[si];
        EXPECT_EQ(s.processors, p.processors);
        ASSERT_EQ(s.points.size(), p.points.size());
        for (std::size_t i = 0; i < s.points.size(); ++i) {
            SCOPED_TRACE("series " + std::to_string(s.processors) +
                         "P point " + std::to_string(i));
            expectBitIdentical(s.points[i], p.points[i]);
        }
    }
}

TEST(StudyParallel, CostHintReordersDispatchButNotResults)
{
    // Longest-first dispatch is scheduling only: any cost hint — here
    // one deliberately adversarial (reverse of the W×P default, so the
    // cheapest points dispatch first) — must yield a StudyResult
    // bit-identical to the serial path.
    const StudyResult serial = ScalingStudy::run(smallGrid(1));

    StudyConfig hinted_cfg = smallGrid(4);
    hinted_cfg.costHint = [](unsigned w, unsigned p) {
        return 1.0 / (static_cast<double>(w) * p);
    };
    const StudyResult hinted = ScalingStudy::run(hinted_cfg);

    ASSERT_EQ(serial.series.size(), hinted.series.size());
    for (std::size_t si = 0; si < serial.series.size(); ++si) {
        const auto &s = serial.series[si];
        const auto &h = hinted.series[si];
        EXPECT_EQ(s.processors, h.processors);
        ASSERT_EQ(s.points.size(), h.points.size());
        for (std::size_t i = 0; i < s.points.size(); ++i) {
            SCOPED_TRACE("series " + std::to_string(s.processors) +
                         "P point " + std::to_string(i));
            expectBitIdentical(s.points[i], h.points[i]);
        }
    }
}

TEST(StudyParallel, HierarchicalRepeatsAreBitIdenticalAcrossJobs)
{
    // StudyConfig::repeats decomposes each grid point into per-seed
    // replicas that run as nested pool tasks when jobs > 1. The
    // aggregated points must not depend on the job count: points are
    // collected by grid index and replicas by replica index.
    StudyConfig serial_cfg = smallGrid(1);
    serial_cfg.warehouses = {10, 25};
    serial_cfg.processors = {1};
    serial_cfg.repeats = 2;
    const StudyResult serial = ScalingStudy::run(serial_cfg);

    StudyConfig parallel_cfg = serial_cfg;
    parallel_cfg.jobs = 4;
    const StudyResult parallel = ScalingStudy::run(parallel_cfg);

    ASSERT_EQ(serial.series.size(), parallel.series.size());
    for (std::size_t si = 0; si < serial.series.size(); ++si) {
        const auto &s = serial.series[si];
        const auto &p = parallel.series[si];
        ASSERT_EQ(s.points.size(), p.points.size());
        for (std::size_t i = 0; i < s.points.size(); ++i) {
            SCOPED_TRACE("repeats point " + std::to_string(i));
            expectBitIdentical(s.points[i], p.points[i]);
        }
    }
}

TEST(StudyParallel, JobsZeroSelectsHardwareConcurrency)
{
    // jobs=0 (auto) must run and produce the same grid shape; the
    // result equivalence to serial is covered above for jobs=4.
    StudyConfig cfg = smallGrid(0);
    cfg.warehouses = {10, 25};
    cfg.processors = {1};
    const StudyResult study = ScalingStudy::run(cfg);
    ASSERT_EQ(study.series.size(), 1u);
    ASSERT_EQ(study.series[0].points.size(), 2u);
    EXPECT_EQ(study.series[0].points[0].warehouses, 10u);
    EXPECT_EQ(study.series[0].points[1].warehouses, 25u);
    EXPECT_GT(study.series[0].points[0].tps, 0.0);
}

} // namespace
