/**
 * @file
 * Tests for the paper's Table 1 client counts and interpolation.
 */

#include <gtest/gtest.h>

#include "core/client_table.hh"

namespace
{

using odbsim::core::paperClients;

TEST(ClientTable, ExactPaperValues)
{
    // The rows of Table 1, verbatim.
    EXPECT_EQ(paperClients(10, 1), 8u);
    EXPECT_EQ(paperClients(10, 2), 10u);
    EXPECT_EQ(paperClients(10, 4), 10u);
    EXPECT_EQ(paperClients(50, 1), 8u);
    EXPECT_EQ(paperClients(50, 2), 16u);
    EXPECT_EQ(paperClients(50, 4), 32u);
    EXPECT_EQ(paperClients(100, 1), 6u);
    EXPECT_EQ(paperClients(100, 2), 16u);
    EXPECT_EQ(paperClients(100, 4), 48u);
    EXPECT_EQ(paperClients(500, 1), 12u);
    EXPECT_EQ(paperClients(500, 2), 25u);
    EXPECT_EQ(paperClients(500, 4), 56u);
    EXPECT_EQ(paperClients(800, 1), 13u);
    EXPECT_EQ(paperClients(800, 2), 36u);
    EXPECT_EQ(paperClients(800, 4), 64u);
}

TEST(ClientTable, InterpolatesBetweenRows)
{
    // Midway between 100 W (48) and 500 W (56) at 4P: 300 W -> 52.
    EXPECT_EQ(paperClients(300, 4), 52u);
    // Midway between 10 (10) and 50 (32) at 4P: 30 W -> 21.
    EXPECT_EQ(paperClients(30, 4), 21u);
}

TEST(ClientTable, ClampsBelowFirstRow)
{
    EXPECT_EQ(paperClients(1, 4), 10u);
    EXPECT_EQ(paperClients(5, 1), 8u);
}

TEST(ClientTable, ExtrapolatesBeyondLastRow)
{
    // 1200 W at 4P: along the 500->800 segment, 64 + (400/300)*8 ≈ 75.
    const unsigned c = paperClients(1200, 4);
    EXPECT_GT(c, 64u);
    EXPECT_LE(c, 96u);
}

TEST(ClientTable, ProcessorColumnsSnap)
{
    EXPECT_EQ(paperClients(50, 3), paperClients(50, 4));
    EXPECT_EQ(paperClients(50, 8), paperClients(50, 4));
    EXPECT_EQ(paperClients(50, 0), paperClients(50, 1));
}

TEST(ClientTable, MonotoneAtLargeScaleFor4P)
{
    // Beyond 100 W the paper's 4P column grows with W.
    unsigned prev = paperClients(100, 4);
    for (unsigned w = 150; w <= 800; w += 50) {
        const unsigned c = paperClients(w, 4);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

} // namespace
