/**
 * @file
 * Tests for the workload driver: client spawning, statistics,
 * throughput accounting.
 */

#include <gtest/gtest.h>

#include "../support/mini_odb.hh"

namespace
{

using namespace odbsim;

TEST(OdbWorkload, SpawnsRequestedClients)
{
    test::MiniOdb rig(2, 2, 5);
    // 5 servers + LGWR + DBWR.
    EXPECT_EQ(rig.sys.processCount(), 7u);
    EXPECT_EQ(rig.workload.clients(), 5u);
    EXPECT_EQ(rig.workload.homes().size(), 5u);
}

TEST(OdbWorkload, HomesCoverWarehousesRoundRobin)
{
    test::MiniOdb rig(2, 2, 5);
    const auto &homes = rig.workload.homes();
    for (std::size_t i = 0; i < homes.size(); ++i)
        EXPECT_EQ(homes[i], i % 2);
}

TEST(OdbWorkload, TpsMatchesCommittedOverWindow)
{
    test::MiniOdb rig;
    rig.measure(50 * tickPerMs, 250 * tickPerMs);
    const double expect =
        static_cast<double>(rig.workload.committed()) / 0.25;
    EXPECT_NEAR(rig.workload.tps(rig.sys.measurementWindow()), expect,
                1e-6 * expect + 1e-9);
}

TEST(OdbWorkload, ResetStatsClearsCountsAndLatencies)
{
    test::MiniOdb rig;
    rig.sys.runFor(100 * tickPerMs);
    EXPECT_GT(rig.workload.committed(), 0u);
    rig.workload.resetStats();
    EXPECT_EQ(rig.workload.committed(), 0u);
    EXPECT_EQ(rig.workload.latencyMs(db::TxnType::Payment).count(), 0u);
}

TEST(OdbWorkload, PerTypeCountsSumToTotal)
{
    test::MiniOdb rig;
    rig.measure();
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < db::numTxnTypes; ++i)
        sum += rig.workload.committed(static_cast<db::TxnType>(i));
    EXPECT_EQ(sum, rig.workload.committed());
}

TEST(OdbWorkload, MoreClientsMoreConcurrency)
{
    auto throughput = [](unsigned clients) {
        test::MiniOdb rig(2, 2, clients);
        rig.measure(50 * tickPerMs, 300 * tickPerMs);
        return rig.workload.tps(rig.sys.measurementWindow());
    };
    // One client cannot mask commit latency; four can.
    EXPECT_GT(throughput(4), throughput(1) * 1.3);
}

TEST(OdbWorkload, ZeroWindowTpsIsZero)
{
    test::MiniOdb rig;
    EXPECT_DOUBLE_EQ(rig.workload.tps(0), 0.0);
}

TEST(OdbWorkload, DoubleStartPanics)
{
    test::MiniOdb rig;
    EXPECT_DEATH({ rig.workload.start(); }, "already started");
}

} // namespace
