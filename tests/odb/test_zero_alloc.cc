/**
 * @file
 * Steady-state allocation tests for the database replay hot path: once
 * planning and replay reach their high-water working set, the flat
 * resident-block index, the lock table + pooled waiter queues, the
 * schema row-state maps and the recycled per-process ActionTrace must
 * never touch the heap again. Enforced two ways: through the
 * structures' own growth counters (mapAllocations(),
 * tableAllocations(), stateAllocations()), and — in non-sanitizer
 * builds — through a replaced global operator new that counts every
 * heap allocation across a steady-state planning loop.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "../support/mini_odb.hh"
#include "db/trace.hh"
#include "odb/planner.hh"
#include "sim/rng.hh"

// ASan ships its own operator new/delete interceptors; replacing them
// here would degrade its mismatch checking, so the strict global
// counter is compiled out and the strict test passes vacuously (the
// counter-based tests still run).
#if defined(__SANITIZE_ADDRESS__)
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 0
#else
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 1
#endif
#else
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 1
#endif

namespace
{
std::atomic<std::uint64_t> g_newCalls{0};
} // namespace

#if ODBSIM_TEST_COUNT_GLOBAL_NEW
void *
operator new(std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#endif // ODBSIM_TEST_COUNT_GLOBAL_NEW

namespace
{

using namespace odbsim;

TEST(ZeroAlloc, ActionIsPackedTo16Bytes)
{
    static_assert(sizeof(db::Action) == 16,
                  "replay actions must stay packed");
    EXPECT_EQ(sizeof(db::Action), 16u);
}

/**
 * Steady-state planning into a recycled trace is strictly
 * allocation-free: after a warm-up that reaches the schema maps' and
 * the trace buffer's high-water marks, thousands of further plans of
 * every transaction type perform zero heap allocations (and zero
 * growth events in the schema's flat row-state maps).
 */
TEST(ZeroAlloc, PlannerSteadyStateIsAllocationFree)
{
    test::MiniOdb rig(1, 2, 1);
    odb::TxnPlanner planner(rig.db, odb::TxnMix{});
    Rng rng(2003);
    db::ActionTrace trace;

    // Warm-up: populate the lazily-inserted schema row states (stock
    // quantities, customer balances) and grow the trace buffer to the
    // longest transaction's length. The row-state key domains are
    // bounded (every customer, every stock row), so planning until a
    // full round allocates nothing proves the maps reached their
    // lifetime capacity — not just a lull between rehashes.
    int rounds = 0;
    std::uint64_t schemaBefore, newBefore;
    do {
        schemaBefore = rig.db.schema().stateAllocations();
        newBefore = g_newCalls.load(std::memory_order_relaxed);
        for (int i = 0; i < 4000; ++i)
            planner.planRandom(rng, static_cast<std::uint32_t>(i % 2),
                               trace);
        ASSERT_LT(++rounds, 64)
            << "schema row-state maps never reached steady state";
    } while (rig.db.schema().stateAllocations() != schemaBefore ||
             g_newCalls.load(std::memory_order_relaxed) != newBefore);

    const std::uint64_t schemaAllocs = rig.db.schema().stateAllocations();
    const std::size_t traceCap = trace.actions.capacity();
    const std::uint64_t newCalls =
        g_newCalls.load(std::memory_order_relaxed);

    for (int i = 0; i < 4000; ++i)
        planner.planRandom(rng, static_cast<std::uint32_t>(i % 2),
                           trace);

    EXPECT_EQ(g_newCalls.load(std::memory_order_relaxed), newCalls)
        << "steady-state planning touched the heap";
    EXPECT_EQ(rig.db.schema().stateAllocations(), schemaAllocs);
    EXPECT_EQ(trace.actions.capacity(), traceCap);
    EXPECT_FALSE(trace.actions.empty());
}

/**
 * Steady-state replay through the full engine: after a warm-up
 * window, continued execution (buffer-cache misses and evictions,
 * lock contention with hand-offs, schema updates) must not advance
 * any of the hot-path structures' growth counters.
 */
TEST(ZeroAlloc, ReplaySteadyStateCountersStayFlat)
{
    test::MiniOdb rig(2, 2, 8);
    rig.sys.runFor(200 * tickPerMs);

    const std::uint64_t bufAllocs = rig.db.bufferCache().mapAllocations();
    const std::uint64_t lockAllocs = rig.db.locks().tableAllocations();
    const std::uint64_t schemaAllocs =
        rig.db.schema().stateAllocations();
    const std::uint64_t before = rig.workload.committed();

    rig.sys.runFor(300 * tickPerMs);

    EXPECT_GT(rig.workload.committed(), before); // Work really ran.
    EXPECT_EQ(rig.db.bufferCache().mapAllocations(), bufAllocs);
    EXPECT_EQ(rig.db.locks().tableAllocations(), lockAllocs);
    EXPECT_EQ(rig.db.schema().stateAllocations(), schemaAllocs);
}

/**
 * A full checkpoint cycle rides the same pooled queues as demand
 * traffic: once DBWR's urgent/checkpoint FIFOs and the per-drive disk
 * queues reach their high-water marks, continued dirtying, aging,
 * write-back and checkpoint drains never grow a pool.
 */
TEST(ZeroAlloc, CheckpointCycleKeepsWriterAndDiskPoolsFlat)
{
    db::DatabaseConfig dbcfg = test::miniDbConfig(2);
    // Age blocks out fast enough that the run below covers many full
    // dirty -> age -> write-back -> checkpoint-advance cycles.
    dbcfg.dbwr.checkpointAge = 20 * tickPerMs;
    test::MiniOdb rig(test::miniSystemConfig(2), dbcfg, 8);
    rig.sys.runFor(300 * tickPerMs);

    const std::uint64_t dbwrAllocs = rig.db.dbwr().queueAllocations();
    const std::uint64_t diskAllocs = rig.sys.disks().queueAllocations();
    const std::uint64_t writesBefore = rig.sys.disks().dataWrites();
    const std::uint64_t before = rig.workload.committed();

    rig.sys.runFor(300 * tickPerMs);

    EXPECT_GT(rig.workload.committed(), before);
    // Write-back really happened (the checkpoint queue drained to
    // disk), yet neither the DBWR FIFOs nor any drive queue grew.
    EXPECT_GT(rig.sys.disks().dataWrites(), writesBefore);
    EXPECT_EQ(rig.db.dbwr().queueAllocations(), dbwrAllocs);
    EXPECT_EQ(rig.sys.disks().queueAllocations(), diskAllocs);
}

/**
 * The inertness contract, at the allocation level: with the fault
 * subsystem compiled in but every knob at its default, a steady-state
 * run must stay exactly as allocation-free as before the subsystem
 * existed — the inert plan gates every injection site and never draws,
 * schedules or allocates.
 */
TEST(ZeroAlloc, FaultFreeRunWithFaultsCompiledInStaysFlat)
{
    db::DatabaseConfig dbcfg = test::miniDbConfig(2);
    // Short aging so the checkpoint queue reaches its high-water
    // population inside the warm-up window (the 5 s default would
    // still be filling, not cycling, at this run length).
    dbcfg.dbwr.checkpointAge = 20 * tickPerMs;
    test::MiniOdb rig(test::miniSystemConfig(2), dbcfg, 8);
    ASSERT_FALSE(rig.sys.faults().anyEnabled());
    rig.sys.runFor(300 * tickPerMs);

    const std::uint64_t bufAllocs = rig.db.bufferCache().mapAllocations();
    const std::uint64_t lockAllocs = rig.db.locks().tableAllocations();
    const std::uint64_t schemaAllocs =
        rig.db.schema().stateAllocations();
    const std::uint64_t dbwrAllocs = rig.db.dbwr().queueAllocations();
    const std::uint64_t diskAllocs = rig.sys.disks().queueAllocations();
    const std::uint64_t before = rig.workload.committed();

    rig.sys.runFor(300 * tickPerMs);

    EXPECT_GT(rig.workload.committed(), before);
    EXPECT_EQ(rig.db.bufferCache().mapAllocations(), bufAllocs);
    EXPECT_EQ(rig.db.locks().tableAllocations(), lockAllocs);
    EXPECT_EQ(rig.db.schema().stateAllocations(), schemaAllocs);
    EXPECT_EQ(rig.db.dbwr().queueAllocations(), dbwrAllocs);
    EXPECT_EQ(rig.sys.disks().queueAllocations(), diskAllocs);

    // And the plan never fired: every counter is still zero.
    const sim::FaultStats &fs = rig.sys.faults().stats();
    EXPECT_EQ(fs.txnAborts, 0u);
    EXPECT_EQ(fs.txnRetries, 0u);
    EXPECT_EQ(fs.lockTimeouts, 0u);
    EXPECT_EQ(fs.diskTransientErrors, 0u);
    EXPECT_EQ(fs.driveFailures, 0u);
    EXPECT_EQ(fs.crashes, 0u);
}

/**
 * The buffer-cache index can never grow after construction, even from
 * a cold cache: residency is bounded by the frame count the map was
 * reserved for.
 */
TEST(ZeroAlloc, BufferCacheIndexReservedForFrameCount)
{
    test::MiniOdb rig(1, 2, 1);
    // instantWarm() filled the cache; the index must already be at its
    // lifetime allocation count with every frame occupied.
    const std::uint64_t allocs = rig.db.bufferCache().mapAllocations();
    rig.sys.runFor(100 * tickPerMs);
    EXPECT_EQ(rig.db.bufferCache().mapAllocations(), allocs);
}

} // namespace
