/**
 * @file
 * Steady-state allocation tests for the database replay hot path: once
 * planning and replay reach their high-water working set, the flat
 * resident-block index, the lock table + pooled waiter queues, the
 * schema row-state maps and the recycled per-process ActionTrace must
 * never touch the heap again. Enforced two ways: through the
 * structures' own growth counters (mapAllocations(),
 * tableAllocations(), stateAllocations()), and — in non-sanitizer
 * builds — through a replaced global operator new that counts every
 * heap allocation across a steady-state planning loop.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <memory>

#include "../support/mini_odb.hh"
#include "db/buffer_cache.hh"
#include "db/lock_manager.hh"
#include "db/trace.hh"
#include "odb/planner.hh"
#include "os/process.hh"
#include "os/system.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

// ASan ships its own operator new/delete interceptors; replacing them
// here would degrade its mismatch checking, so the strict global
// counter is compiled out and the strict test passes vacuously (the
// counter-based tests still run).
#if defined(__SANITIZE_ADDRESS__)
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 0
#else
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 1
#endif
#else
#define ODBSIM_TEST_COUNT_GLOBAL_NEW 1
#endif

namespace
{
std::atomic<std::uint64_t> g_newCalls{0};
} // namespace

#if ODBSIM_TEST_COUNT_GLOBAL_NEW
void *
operator new(std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#endif // ODBSIM_TEST_COUNT_GLOBAL_NEW

namespace
{

using namespace odbsim;

TEST(ZeroAlloc, ActionIsPackedTo16Bytes)
{
    static_assert(sizeof(db::Action) == 16,
                  "replay actions must stay packed");
    EXPECT_EQ(sizeof(db::Action), 16u);
}

/**
 * Steady-state planning into a recycled trace is strictly
 * allocation-free: after a warm-up that reaches the schema maps' and
 * the trace buffer's high-water marks, thousands of further plans of
 * every transaction type perform zero heap allocations (and zero
 * growth events in the schema's flat row-state maps).
 */
TEST(ZeroAlloc, PlannerSteadyStateIsAllocationFree)
{
    test::MiniOdb rig(1, 2, 1);
    odb::TxnPlanner planner(rig.db, odb::TxnMix{});
    Rng rng(2003);
    db::ActionTrace trace;

    // Warm-up: populate the lazily-inserted schema row states (stock
    // quantities, customer balances) and grow the trace buffer to the
    // longest transaction's length. The row-state key domains are
    // bounded (every customer, every stock row), so planning until a
    // full round allocates nothing proves the maps reached their
    // lifetime capacity — not just a lull between rehashes.
    int rounds = 0;
    std::uint64_t schemaBefore, newBefore;
    do {
        schemaBefore = rig.db.schema().stateAllocations();
        newBefore = g_newCalls.load(std::memory_order_relaxed);
        for (int i = 0; i < 4000; ++i)
            planner.planRandom(rng, static_cast<std::uint32_t>(i % 2),
                               trace);
        ASSERT_LT(++rounds, 64)
            << "schema row-state maps never reached steady state";
    } while (rig.db.schema().stateAllocations() != schemaBefore ||
             g_newCalls.load(std::memory_order_relaxed) != newBefore);

    const std::uint64_t schemaAllocs = rig.db.schema().stateAllocations();
    const std::size_t traceCap = trace.actions.capacity();
    const std::uint64_t newCalls =
        g_newCalls.load(std::memory_order_relaxed);

    for (int i = 0; i < 4000; ++i)
        planner.planRandom(rng, static_cast<std::uint32_t>(i % 2),
                           trace);

    EXPECT_EQ(g_newCalls.load(std::memory_order_relaxed), newCalls)
        << "steady-state planning touched the heap";
    EXPECT_EQ(rig.db.schema().stateAllocations(), schemaAllocs);
    EXPECT_EQ(trace.actions.capacity(), traceCap);
    EXPECT_FALSE(trace.actions.empty());
}

/**
 * Steady-state replay through the full engine: after a warm-up
 * window, continued execution (buffer-cache misses and evictions,
 * lock contention with hand-offs, schema updates) must not advance
 * any of the hot-path structures' growth counters.
 */
TEST(ZeroAlloc, ReplaySteadyStateCountersStayFlat)
{
    test::MiniOdb rig(2, 2, 8);
    rig.sys.runFor(200 * tickPerMs);

    const std::uint64_t bufAllocs = rig.db.bufferCache().mapAllocations();
    const std::uint64_t lockAllocs = rig.db.locks().tableAllocations();
    const std::uint64_t schemaAllocs =
        rig.db.schema().stateAllocations();
    const std::uint64_t before = rig.workload.committed();

    rig.sys.runFor(300 * tickPerMs);

    EXPECT_GT(rig.workload.committed(), before); // Work really ran.
    EXPECT_EQ(rig.db.bufferCache().mapAllocations(), bufAllocs);
    EXPECT_EQ(rig.db.locks().tableAllocations(), lockAllocs);
    EXPECT_EQ(rig.db.schema().stateAllocations(), schemaAllocs);
}

/**
 * A full checkpoint cycle rides the same pooled queues as demand
 * traffic: once DBWR's urgent/checkpoint FIFOs and the per-drive disk
 * queues reach their high-water marks, continued dirtying, aging,
 * write-back and checkpoint drains never grow a pool.
 */
TEST(ZeroAlloc, CheckpointCycleKeepsWriterAndDiskPoolsFlat)
{
    db::DatabaseConfig dbcfg = test::miniDbConfig(2);
    // Age blocks out fast enough that the run below covers many full
    // dirty -> age -> write-back -> checkpoint-advance cycles.
    dbcfg.dbwr.checkpointAge = 20 * tickPerMs;
    test::MiniOdb rig(test::miniSystemConfig(2), dbcfg, 8);
    rig.sys.runFor(300 * tickPerMs);

    const std::uint64_t dbwrAllocs = rig.db.dbwr().queueAllocations();
    const std::uint64_t diskAllocs = rig.sys.disks().queueAllocations();
    const std::uint64_t writesBefore = rig.sys.disks().dataWrites();
    const std::uint64_t before = rig.workload.committed();

    rig.sys.runFor(300 * tickPerMs);

    EXPECT_GT(rig.workload.committed(), before);
    // Write-back really happened (the checkpoint queue drained to
    // disk), yet neither the DBWR FIFOs nor any drive queue grew.
    EXPECT_GT(rig.sys.disks().dataWrites(), writesBefore);
    EXPECT_EQ(rig.db.dbwr().queueAllocations(), dbwrAllocs);
    EXPECT_EQ(rig.sys.disks().queueAllocations(), diskAllocs);
}

/**
 * The inertness contract, at the allocation level: with the fault
 * subsystem compiled in but every knob at its default, a steady-state
 * run must stay exactly as allocation-free as before the subsystem
 * existed — the inert plan gates every injection site and never draws,
 * schedules or allocates.
 */
TEST(ZeroAlloc, FaultFreeRunWithFaultsCompiledInStaysFlat)
{
    db::DatabaseConfig dbcfg = test::miniDbConfig(2);
    // Short aging so the checkpoint queue reaches its high-water
    // population inside the warm-up window (the 5 s default would
    // still be filling, not cycling, at this run length).
    dbcfg.dbwr.checkpointAge = 20 * tickPerMs;
    test::MiniOdb rig(test::miniSystemConfig(2), dbcfg, 8);
    ASSERT_FALSE(rig.sys.faults().anyEnabled());
    rig.sys.runFor(300 * tickPerMs);

    const std::uint64_t bufAllocs = rig.db.bufferCache().mapAllocations();
    const std::uint64_t lockAllocs = rig.db.locks().tableAllocations();
    const std::uint64_t schemaAllocs =
        rig.db.schema().stateAllocations();
    const std::uint64_t dbwrAllocs = rig.db.dbwr().queueAllocations();
    const std::uint64_t diskAllocs = rig.sys.disks().queueAllocations();
    const std::uint64_t before = rig.workload.committed();

    rig.sys.runFor(300 * tickPerMs);

    EXPECT_GT(rig.workload.committed(), before);
    EXPECT_EQ(rig.db.bufferCache().mapAllocations(), bufAllocs);
    EXPECT_EQ(rig.db.locks().tableAllocations(), lockAllocs);
    EXPECT_EQ(rig.db.schema().stateAllocations(), schemaAllocs);
    EXPECT_EQ(rig.db.dbwr().queueAllocations(), dbwrAllocs);
    EXPECT_EQ(rig.sys.disks().queueAllocations(), diskAllocs);

    // And the plan never fired: every counter is still zero.
    const sim::FaultStats &fs = rig.sys.faults().stats();
    EXPECT_EQ(fs.txnAborts, 0u);
    EXPECT_EQ(fs.txnRetries, 0u);
    EXPECT_EQ(fs.lockTimeouts, 0u);
    EXPECT_EQ(fs.diskTransientErrors, 0u);
    EXPECT_EQ(fs.driveFailures, 0u);
    EXPECT_EQ(fs.crashes, 0u);
}

/**
 * Steady-state scheduling through the timer wheel is strictly
 * allocation-free: once the slab, the overflow heap and the firing
 * cohort have reached their high-water marks, a schedule-one/fire-one
 * loop at constant population — spanning every wheel level and the
 * far-future overflow — performs zero heap allocations.
 */
TEST(ZeroAlloc, WheelSteadyStateSchedulingIsAllocationFree)
{
    EventQueue eq;
    Rng rng(7);
    std::uint64_t sink = 0;
    auto delay = [&rng]() -> Tick {
        switch (rng.below(16)) {
          case 0: // Beyond the wheel horizon: overflow heap.
            return EventQueue::kWheelHorizon + rng.below(1000);
          case 1:
          case 2: // Mid levels.
            return rng.below(3'000'000) + 1;
          default: // Levels 0-2.
            return rng.below(1'000) + 1;
        }
    };
    // Warm-up, sized so every internal buffer's high-water mark covers
    // the measured loop. The standing population is 2048 and its
    // composition drifts: short events fire and recycle while
    // far-future ones accumulate in the overflow until a horizon-block
    // jump drains them — so in the worst case the whole population sits
    // in the overflow heap at once. Warm it to the full population
    // (plus slack for the lazily-reclaimed cancelled entries), not
    // just to the schedule-mix share.
    std::vector<EventHandle> far;
    far.reserve(3000);
    for (int i = 0; i < 3000; ++i) {
        far.push_back(
            eq.scheduleAfter(EventQueue::kWheelHorizon + rng.below(1000),
                             [&sink] { ++sink; }));
    }
    for (int i = 0; i < 952; ++i)
        far[i].cancel(); // 2048 live far-future events remain.
    for (int i = 0; i < 1100; ++i) {
        // 64 of these share one tick, warming the firing cohort.
        const Tick d = i < 64 ? 500 : rng.below(1'000) + 1;
        eq.scheduleAfter(d, [&sink] { ++sink; });
    }
    for (int i = 0; i < 1100; ++i)
        eq.step(); // Fire every short event; the far ones park.
    ASSERT_EQ(eq.size(), 2048u);

    const std::uint64_t newBefore =
        g_newCalls.load(std::memory_order_relaxed);
    for (int i = 0; i < 100'000; ++i) {
        eq.scheduleAfter(delay(), [&sink] { ++sink; });
        eq.step();
    }
    EXPECT_EQ(g_newCalls.load(std::memory_order_relaxed), newBefore)
        << "steady-state wheel scheduling touched the heap";
    EXPECT_GT(sink, 0u);
    EXPECT_EQ(eq.size(), 2048u);
}

/** A process that parks forever (a lock-holder stand-in). */
class ParkedForever : public os::Process
{
  public:
    ParkedForever()
        : os::Process("parked")
    {}

    os::NextAction
    next(os::System &) override
    {
        os::NextAction act;
        act.after = os::NextAction::After::Block;
        return act;
    }
};

/**
 * Steady-state churn through K=4 sharded lock and buffer tables —
 * contended acquire/release rounds with FIFO hand-offs, and a
 * miss/evict reference stream — performs zero heap allocations once
 * the shards' tables, waiter pools and the scheduler's wake path have
 * reached their high-water marks.
 */
TEST(ZeroAlloc, ShardedLockAndBufferSteadyStateIsAllocationFree)
{
    os::SystemConfig cfg;
    cfg.numCpus = 1;
    cfg.core.samplePeriod = 16;
    cfg.disks.dataDisks = 1;
    cfg.disks.logDisks = 1;
    os::System sys(cfg);
    os::Process *p1 = sys.spawn(std::make_unique<ParkedForever>());
    os::Process *p2 = sys.spawn(std::make_unique<ParkedForever>());
    sys.runFor(tickPerMs); // Let both park.

    db::LockManager lm(4);
    db::BufferCache bc(64, 4);
    Rng rng(11);
    std::uint64_t sink = 0;
    auto round = [&] {
        for (db::LockKey k = 0; k < 32; ++k)
            lm.acquire(p1, k);
        for (db::LockKey k = 0; k < 8; ++k)
            lm.acquire(p2, k); // Queued: exercises the waiter pools.
        for (db::LockKey k = 0; k < 32; ++k)
            lm.release(p1, k, sys);
        for (db::LockKey k = 0; k < 8; ++k)
            lm.release(p2, k, sys); // Handed off above; release again.
        for (int i = 0; i < 64; ++i) {
            const db::BlockId b = rng.below(256);
            if (!bc.lookup(b).hit) {
                const db::BufferVictim v = bc.allocate(b);
                bc.fillComplete(v.frame);
                sink += v.frame;
            }
        }
    };
    round(); // Reach every shard's high-water population.

    const std::uint64_t tblBefore = lm.tableAllocations();
    const std::uint64_t mapBefore = bc.mapAllocations();
    const std::uint64_t newBefore =
        g_newCalls.load(std::memory_order_relaxed);
    for (int i = 0; i < 2000; ++i)
        round();
    EXPECT_EQ(g_newCalls.load(std::memory_order_relaxed), newBefore)
        << "steady-state sharded lock/buffer churn touched the heap";
    EXPECT_EQ(lm.tableAllocations(), tblBefore);
    EXPECT_EQ(bc.mapAllocations(), mapBefore);
    EXPECT_EQ(lm.heldCount(), 0u);
    EXPECT_EQ(lm.waiterCount(), 0u);
    EXPECT_GT(sink, 0u);
}

/**
 * The buffer-cache index can never grow after construction, even from
 * a cold cache: residency is bounded by the frame count the map was
 * reserved for.
 */
TEST(ZeroAlloc, BufferCacheIndexReservedForFrameCount)
{
    test::MiniOdb rig(1, 2, 1);
    // instantWarm() filled the cache; the index must already be at its
    // lifetime allocation count with every frame occupied.
    const std::uint64_t allocs = rig.db.bufferCache().mapAllocations();
    rig.sys.runFor(100 * tickPerMs);
    EXPECT_EQ(rig.db.bufferCache().mapAllocations(), allocs);
}

} // namespace
