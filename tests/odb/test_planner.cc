/**
 * @file
 * Tests for the transaction planners: trace structure, lock ordering,
 * log volumes, functional side effects.
 */

#include <gtest/gtest.h>

#include "../support/mini_odb.hh"
#include "odb/planner.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::odb;
using db::Action;
using db::ActionKind;
using db::TxnType;

struct Rig
{
    os::System sys;
    db::Database db;
    TxnPlanner planner;
    Rng rng;

    Rig()
        : sys(test::miniSystemConfig(1)), db(sys, test::miniDbConfig(2)),
          planner(db, TxnMix{}), rng(123)
    {}
};

unsigned
countKind(const db::ActionTrace &t, ActionKind k)
{
    unsigned n = 0;
    for (const auto &a : t.actions)
        n += a.kind() == k;
    return n;
}

TEST(TxnPlanner, EveryTraceEndsWithCommit)
{
    Rig rig;
    for (unsigned i = 0; i < static_cast<unsigned>(TxnType::NumTypes);
         ++i) {
        const auto t =
            rig.planner.plan(static_cast<TxnType>(i), rig.rng, 0);
        ASSERT_FALSE(t.actions.empty());
        EXPECT_EQ(t.actions.back().kind(), ActionKind::Commit);
        EXPECT_EQ(countKind(t, ActionKind::Commit), 1u);
    }
}

TEST(TxnPlanner, NewOrderShape)
{
    Rig rig;
    const auto t = rig.planner.plan(TxnType::NewOrder, rig.rng, 0);
    // Locks: warehouse contention lock + district; one early unlock.
    EXPECT_EQ(countKind(t, ActionKind::Lock), 2u);
    EXPECT_EQ(countKind(t, ActionKind::Unlock), 1u);
    // 5..15 order lines, each with item+stock+insert touches.
    const unsigned touches = countKind(t, ActionKind::Touch);
    EXPECT_GE(touches, 30u);
    EXPECT_LE(touches, 160u);
    // Redo volume: 4000 + 450 per line.
    EXPECT_GE(t.logBytes, 4000u + 450u * 5);
    EXPECT_LE(t.logBytes, 4000u + 450u * 15);
}

TEST(TxnPlanner, NewOrderAdvancesOrderCounter)
{
    Rig rig;
    const auto before = rig.db.schema().nextOid(0, 0);
    // Plan enough NewOrders that district 0 is hit w.h.p.
    for (int i = 0; i < 40; ++i)
        rig.planner.plan(TxnType::NewOrder, rig.rng, 0);
    std::uint32_t total_after = 0, total_before = 0;
    for (std::uint32_t d = 0; d < 10; ++d) {
        total_after += rig.db.schema().nextOid(0, d);
        total_before += d == 0 ? before : 100;
    }
    EXPECT_EQ(total_after, total_before + 40);
}

TEST(TxnPlanner, PaymentLocksInGlobalOrder)
{
    Rig rig;
    const auto t = rig.planner.plan(TxnType::Payment, rig.rng, 1);
    std::vector<db::LockKey> locks;
    for (const auto &a : t.actions) {
        if (a.kind() == ActionKind::Lock)
            locks.push_back(a.target);
    }
    ASSERT_EQ(locks.size(), 3u); // Warehouse, district, customer.
    EXPECT_TRUE(std::is_sorted(locks.begin(), locks.end()));
    EXPECT_GT(t.logBytes, 0u);
}

TEST(TxnPlanner, ReadOnlyTransactionsHaveNoRedo)
{
    Rig rig;
    EXPECT_EQ(rig.planner.plan(TxnType::OrderStatus, rig.rng, 0).logBytes,
              0u);
    EXPECT_EQ(rig.planner.plan(TxnType::StockLevel, rig.rng, 0).logBytes,
              0u);
}

TEST(TxnPlanner, ReadOnlyTransactionsDoNotModify)
{
    Rig rig;
    for (const TxnType type : {TxnType::OrderStatus, TxnType::StockLevel}) {
        const auto t = rig.planner.plan(type, rig.rng, 0);
        for (const auto &a : t.actions) {
            if (a.kind() == ActionKind::Touch)
                EXPECT_NE(a.touch(), db::TouchKind::HeapModify)
                    << toString(type);
        }
        EXPECT_EQ(countKind(t, ActionKind::Lock), 0u);
    }
}

TEST(TxnPlanner, DeliveryConsumesPendingOrders)
{
    Rig rig;
    auto &schema = rig.db.schema();
    const auto t = rig.planner.plan(TxnType::Delivery, rig.rng, 0);
    EXPECT_GT(countKind(t, ActionKind::Touch), 20u);
    EXPECT_EQ(t.logBytes, 12000u);
    // Ten districts each advanced their delivery frontier.
    std::uint32_t frontier_sum = 0;
    for (std::uint32_t d = 0; d < 10; ++d)
        frontier_sum += *schema.popDeliveryOrder(0, d);
    EXPECT_EQ(frontier_sum, 71u * 10); // 70 consumed by the plan.
}

TEST(TxnPlanner, UndoWritesAreFreshTouches)
{
    Rig rig;
    const auto t = rig.planner.plan(TxnType::Payment, rig.rng, 0);
    unsigned fresh = 0;
    for (const auto &a : t.actions)
        fresh += a.kind() == ActionKind::Touch && a.fresh();
    EXPECT_GE(fresh, 3u); // Three undo records + history insert.
}

TEST(TxnPlanner, TouchOffsetsStayInBlock)
{
    Rig rig;
    for (int i = 0; i < 20; ++i) {
        const auto t = rig.planner.planRandom(rig.rng, 1);
        for (const auto &a : t.actions) {
            if (a.kind() != ActionKind::Touch)
                continue;
            EXPECT_LT(a.offset(), db::blockBytes);
            EXPECT_LE(static_cast<std::uint32_t>(a.offset()) + a.bytes(),
                      db::blockBytes + 512);
            EXPECT_LT(a.target, rig.db.schema().totalBlocks());
        }
    }
}

TEST(TxnPlanner, MixMatchesConfiguredShares)
{
    Rig rig;
    unsigned counts[db::numTxnTypes] = {};
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const auto t = rig.planner.planRandom(rig.rng, 0);
        ++counts[static_cast<unsigned>(t.type)];
    }
    EXPECT_NEAR(counts[0] / double(n), 0.45, 0.03); // NewOrder.
    EXPECT_NEAR(counts[1] / double(n), 0.43, 0.03); // Payment.
    EXPECT_NEAR(counts[2] / double(n), 0.04, 0.02);
    EXPECT_NEAR(counts[3] / double(n), 0.04, 0.02);
    EXPECT_NEAR(counts[4] / double(n), 0.04, 0.02);
}

TEST(TxnPlanner, InvalidMixRejected)
{
    Rig rig;
    TxnMix bad;
    bad.newOrderPct = 50;
    bad.paymentPct = 50;
    bad.orderStatusPct = 50;
    bad.deliveryPct = 0;
    bad.stockLevelPct = 0;
    EXPECT_DEATH({ TxnPlanner p(rig.db, bad); }, "sum to 100");
}

TEST(TxnPlanner, UserInstructionsPerTxnInPaperBand)
{
    // The mix-average user-space path length should be around a
    // million instructions (paper Figure 5).
    Rig rig;
    double instr = 0.0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        const auto t = rig.planner.planRandom(rig.rng, 0);
        for (const auto &a : t.actions) {
            if (a.kind() == ActionKind::Compute)
                instr += a.instr;
        }
    }
    const double per_txn = instr / n;
    EXPECT_GT(per_txn, 3e5);
    EXPECT_LT(per_txn, 3e6);
}

} // namespace
