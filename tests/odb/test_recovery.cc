/**
 * @file
 * RecoveryProcess edge cases on the mini deployment: the zero-redo
 * fast path, the redo cap binding exactly, and recovery driving its
 * chunked log-read loop to completion through injected disk faults.
 * (The happy-path crash contract — positive MTTR, determinism, the
 * throughput dip — lives in the whole-run fault suite,
 * tests/core/test_faults.cc.)
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "../support/mini_odb.hh"
#include "sim/fault.hh"

namespace
{

using namespace odbsim;

TEST(RecoveryProcess, ZeroRedoSinceCheckpointCompletesImmediately)
{
    // Crash before the first commit: no redo has been generated, so
    // the first recovery dispatch resolves a zero-byte window and
    // declares the instance up without ever touching the log drives.
    os::SystemConfig syscfg = test::miniSystemConfig();
    syscfg.faults.crashAtMs = 0.001;
    test::MiniOdb rig(syscfg, test::miniDbConfig(), 4);
    ASSERT_EQ(rig.db.log().redoSinceCheckpoint(), 0u);

    rig.sys.runFor(100 * tickPerMs);

    const sim::FaultStats &stats = rig.sys.faults().stats();
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_EQ(stats.redoReplayedBytes, 0u);
    // Recovery still pays its open-for-business dispatch, so the end
    // marker lands after the crash tick — and the revived servers
    // commit for the rest of the run.
    EXPECT_GT(stats.recoveryEndTick, stats.crashTick);
    EXPECT_GT(rig.workload.committed(), 0u);
}

TEST(RecoveryProcess, RedoWindowBindsExactlyAtTheCap)
{
    // Crash after a long stretch of commits with a cap far below the
    // accumulated redo: the replayed window must equal the configured
    // cap byte for byte (min(redoSinceCheckpoint, cap) picked cap).
    os::SystemConfig syscfg = test::miniSystemConfig();
    syscfg.faults.crashAtMs = 100.0;
    syscfg.faults.recoveryRedoCapMb = 0.01;
    test::MiniOdb rig(syscfg, test::miniDbConfig(), 4);

    rig.sys.runFor(300 * tickPerMs);

    const sim::FaultStats &stats = rig.sys.faults().stats();
    const auto cap = static_cast<std::uint64_t>(
        syscfg.faults.recoveryRedoCapMb * 1024.0 * 1024.0);
    EXPECT_EQ(stats.crashes, 1u);
    // The run accumulated more redo than the cap, so the assertion is
    // not vacuously min(x, cap) == x.
    EXPECT_GT(rig.db.log().redoSinceCheckpoint(), cap);
    EXPECT_EQ(stats.redoReplayedBytes, cap);
    EXPECT_GT(stats.recoveryEndTick, stats.crashTick);
    EXPECT_GT(rig.workload.committed(), 0u);
}

TEST(RecoveryProcess, ChunkLoopCompletesUnderDiskFaults)
{
    // Aggressive transient-fault injection while recovery streams its
    // chunked log reads: every chunk may need retries, but the loop
    // must still drain the full window and bring the instance back.
    os::SystemConfig syscfg = test::miniSystemConfig();
    syscfg.faults.crashAtMs = 100.0;
    syscfg.faults.recoveryRedoCapMb = 0.05;
    syscfg.faults.diskTransientProb = 0.3;
    test::MiniOdb rig(syscfg, test::miniDbConfig(), 4);

    rig.sys.runFor(400 * tickPerMs);

    const sim::FaultStats &stats = rig.sys.faults().stats();
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_GT(stats.diskTransientErrors, 0u);
    EXPECT_GT(stats.redoReplayedBytes, 0u);
    EXPECT_GT(stats.recoveryEndTick, stats.crashTick);
    EXPECT_GT(rig.workload.committed(), 0u);

    // Same faulty configuration, same seed: the recovery path is
    // deterministic down to the event count.
    test::MiniOdb again(syscfg, test::miniDbConfig(), 4);
    again.sys.runFor(400 * tickPerMs);
    EXPECT_EQ(again.sys.faults().stats().recoveryEndTick,
              stats.recoveryEndTick);
    EXPECT_EQ(again.workload.committed(), rig.workload.committed());
    EXPECT_EQ(again.sys.eq().eventsFired(), rig.sys.eq().eventsFired());
}

} // namespace
