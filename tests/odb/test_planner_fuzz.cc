/**
 * @file
 * Fuzz-style property tests over the planners: for thousands of random
 * transactions across seeds and warehouse counts, every generated
 * trace must satisfy the replay engine's structural invariants.
 */

#include <gtest/gtest.h>

#include <map>

#include "../support/mini_odb.hh"
#include "odb/planner.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::odb;
using db::Action;
using db::ActionKind;

class PlannerFuzz
    : public ::testing::TestWithParam<std::tuple<unsigned, int>>
{
  protected:
    void
    SetUp() override
    {
        const auto [warehouses, seed] = GetParam();
        sys_ = std::make_unique<os::System>(test::miniSystemConfig(1));
        db_ = std::make_unique<db::Database>(
            *sys_, test::miniDbConfig(warehouses));
        planner_ = std::make_unique<TxnPlanner>(*db_, TxnMix{});
        rng_ = std::make_unique<Rng>(seed);
    }

    std::unique_ptr<os::System> sys_;
    std::unique_ptr<db::Database> db_;
    std::unique_ptr<TxnPlanner> planner_;
    std::unique_ptr<Rng> rng_;
};

TEST_P(PlannerFuzz, TracesSatisfyReplayInvariants)
{
    const unsigned warehouses = std::get<0>(GetParam());
    for (int i = 0; i < 800; ++i) {
        const std::uint32_t w =
            static_cast<std::uint32_t>(rng_->below(warehouses));
        const db::ActionTrace t = planner_->planRandom(*rng_, w);

        ASSERT_FALSE(t.actions.empty());
        // Exactly one commit, and it is last.
        EXPECT_EQ(t.actions.back().kind(), ActionKind::Commit);

        std::map<db::LockKey, int> held;
        db::LockKey last_lock = 0;
        bool saw_unlock = false;
        for (std::size_t a = 0; a < t.actions.size(); ++a) {
            const Action &act = t.actions[a];
            switch (act.kind()) {
              case ActionKind::Lock:
                // Locks are acquired in nondecreasing global order
                // (the deadlock-freedom invariant) until the first
                // early release.
                if (!saw_unlock)
                    EXPECT_GE(act.target, last_lock);
                last_lock = act.target;
                ++held[act.target];
                EXPECT_LE(held[act.target], 1) << "double lock";
                break;
              case ActionKind::Unlock:
                saw_unlock = true;
                ASSERT_EQ(held[act.target], 1) << "unlock not held";
                --held[act.target];
                break;
              case ActionKind::Touch:
                EXPECT_LT(act.target, db_->schema().totalBlocks());
                EXPECT_LT(act.offset(), db::blockBytes);
                EXPECT_GT(act.bytes(), 0u);
                break;
              case ActionKind::Compute:
                EXPECT_LE(act.instr, 1000000u);
                break;
              case ActionKind::Commit:
                EXPECT_EQ(a, t.actions.size() - 1);
                break;
            }
        }
        // Read-only transactions carry no redo.
        if (t.type == db::TxnType::OrderStatus ||
            t.type == db::TxnType::StockLevel) {
            EXPECT_EQ(t.logBytes, 0u);
        }
        EXPECT_LE(t.logBytes, 32768u);
        // Everything not early-released is released at commit; the
        // held map may contain entries with count 1 (commit-released).
        for (const auto &[key, n] : held)
            EXPECT_GE(n, 0);
    }
}

TEST_P(PlannerFuzz, OrderCountersNeverRegress)
{
    const unsigned warehouses = std::get<0>(GetParam());
    std::vector<std::uint32_t> before;
    for (unsigned w = 0; w < warehouses; ++w) {
        for (std::uint32_t d = 0; d < 10; ++d)
            before.push_back(db_->schema().nextOid(w, d));
    }
    for (int i = 0; i < 500; ++i) {
        planner_->planRandom(
            *rng_,
            static_cast<std::uint32_t>(rng_->below(warehouses)));
    }
    std::size_t idx = 0;
    for (unsigned w = 0; w < warehouses; ++w) {
        for (std::uint32_t d = 0; d < 10; ++d)
            EXPECT_GE(db_->schema().nextOid(w, d), before[idx++]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PlannerFuzz,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(11, 22, 33)));

} // namespace
