/**
 * @file
 * Contract of the host-parallel shard replay: thread-count-invariant
 * per-group stats and digests (the plan phase decides everything the
 * result reports), structurally conflict-free locking via the greedy
 * claim map, and full lock release at the end of every trace.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "odb/host_replay.hh"

namespace
{

using namespace odbsim;

odb::HostReplayConfig
smallConfig(unsigned threads)
{
    odb::HostReplayConfig cfg;
    cfg.warehouses = 16;
    cfg.groups = 4;
    cfg.txnsPerGroup = 300;
    cfg.dbShards = 4;
    cfg.threads = threads;
    return cfg;
}

TEST(HostReplay, ThreadCountNeverChangesResults)
{
    const odb::HostReplayResult serial =
        odb::HostReplay::run(smallConfig(1));
    ASSERT_EQ(serial.groups.size(), 4u);
    for (unsigned threads : {0u, 2u, 4u}) {
        const odb::HostReplayResult par =
            odb::HostReplay::run(smallConfig(threads));
        EXPECT_EQ(par.digest, serial.digest) << "threads=" << threads;
        ASSERT_EQ(par.groups.size(), serial.groups.size());
        for (std::size_t g = 0; g < serial.groups.size(); ++g) {
            const odb::HostReplayGroupStats &a = serial.groups[g];
            const odb::HostReplayGroupStats &b = par.groups[g];
            EXPECT_EQ(a.txns, b.txns) << "group " << g;
            EXPECT_EQ(a.actions, b.actions) << "group " << g;
            EXPECT_EQ(a.lockAcquires, b.lockAcquires) << "group " << g;
            EXPECT_EQ(a.touches, b.touches) << "group " << g;
            EXPECT_EQ(a.computeInstr, b.computeInstr) << "group " << g;
            EXPECT_EQ(a.logBytes, b.logBytes) << "group " << g;
            EXPECT_EQ(a.digest, b.digest) << "group " << g;
        }
        EXPECT_EQ(par.cross.txns, serial.cross.txns);
        EXPECT_EQ(par.cross.digest, serial.cross.digest);
        EXPECT_EQ(par.lockAcquires, serial.lockAcquires);
    }
}

TEST(HostReplay, ClaimMapMakesConflictsStructurallyImpossible)
{
    const odb::HostReplayResult r = odb::HostReplay::run(smallConfig(4));
    EXPECT_EQ(r.lockConflicts, 0u);
    EXPECT_EQ(r.locksHeldAfter, 0u);
    // The shared lock table's acquire counter must reconcile with the
    // per-bucket counts — nothing replays outside a bucket.
    std::uint64_t bucket_acquires = r.cross.lockAcquires;
    std::uint64_t txns = r.cross.txns;
    for (const odb::HostReplayGroupStats &g : r.groups) {
        bucket_acquires += g.lockAcquires;
        txns += g.txns;
    }
    EXPECT_EQ(r.lockAcquires, bucket_acquires);
    EXPECT_GT(r.lockAcquires, 0u);
    EXPECT_EQ(txns, 4u * 300u);
    // The remote-warehouse TPC-C mix guarantees a non-empty cross
    // bucket at this scale, and home traces dominate.
    EXPECT_GT(r.cross.txns, 0u);
    for (const odb::HostReplayGroupStats &g : r.groups)
        EXPECT_GT(g.txns, r.cross.txns / 4);
}

} // namespace
