/**
 * @file
 * Integration tests for the server-process replay engine: transactions
 * complete, locks are released, buffer misses trigger reads, commits
 * reach the log.
 */

#include <gtest/gtest.h>

#include "../support/mini_odb.hh"

namespace
{

using namespace odbsim;

TEST(ServerProcess, TransactionsComplete)
{
    test::MiniOdb rig(2, 2, 4);
    rig.measure();
    EXPECT_GT(rig.workload.committed(), 50u);
}

TEST(ServerProcess, AllTransactionTypesCommit)
{
    test::MiniOdb rig(2, 2, 6);
    rig.measure(50 * tickPerMs, 800 * tickPerMs);
    for (unsigned i = 0; i < db::numTxnTypes; ++i) {
        EXPECT_GT(rig.workload.committed(static_cast<db::TxnType>(i)), 0u)
            << toString(static_cast<db::TxnType>(i));
    }
}

TEST(ServerProcess, NoLocksLeakAcrossTransactions)
{
    test::MiniOdb rig(2, 2, 6);
    rig.measure();
    // After hundreds of transactions the lock table holds at most the
    // locks of the transactions in flight (bounded by clients x 3).
    EXPECT_LE(rig.db.locks().heldCount(), 6u * 4u);
    EXPECT_GT(rig.db.locks().acquires(), 100u);
}

TEST(ServerProcess, CommitsReachTheRedoLog)
{
    test::MiniOdb rig;
    rig.measure();
    EXPECT_GT(rig.db.log().commitsServed(), 0u);
    EXPECT_GT(rig.db.log().bytesFlushed(), 0u);
    // Read-only transactions skip the flush: commits served is below
    // total committed.
    EXPECT_LE(rig.db.log().commitsServed(), rig.workload.committed());
}

TEST(ServerProcess, LogBytesPerTxnNearSixKb)
{
    test::MiniOdb rig(2, 2, 6);
    rig.measure(50 * tickPerMs, 500 * tickPerMs);
    const double kb_per_txn =
        static_cast<double>(rig.sys.disks().logBytesWritten()) / 1024.0 /
        static_cast<double>(rig.workload.committed());
    // Paper: ~6 KB of redo per transaction, independent of W and P.
    EXPECT_GT(kb_per_txn, 3.0);
    EXPECT_LT(kb_per_txn, 10.0);
}

TEST(ServerProcess, BufferMissesCauseDiskReads)
{
    // A database larger than the tiny SGA forces misses.
    os::System sys(test::miniSystemConfig(2));
    db::DatabaseConfig dbcfg = test::miniDbConfig(8);
    dbcfg.sgaFrames = 512; // Far smaller than the working set.
    db::Database db(sys, dbcfg);
    odb::WorkloadConfig wcfg;
    wcfg.clients = 6;
    odb::OdbWorkload workload(db, wcfg);
    db.start();
    workload.start();
    db.instantWarm();
    sys.runFor(300 * tickPerMs);
    EXPECT_GT(sys.disks().dataReads(), 0u);
    EXPECT_LT(db.bufferCache().hitRatio(), 1.0);
    EXPECT_GT(workload.committed(), 0u);
}

TEST(ServerProcess, CachedSetupHasAlmostNoReads)
{
    // Everything fits: after warm-up, reads per txn should be tiny
    // (the paper's cached-setup property).
    test::MiniOdb rig(2, 2, 4);
    rig.measure(400 * tickPerMs, 400 * tickPerMs);
    const double reads_per_txn =
        static_cast<double>(rig.sys.disks().dataReads()) /
        static_cast<double>(rig.workload.committed());
    EXPECT_LT(reads_per_txn, 1.0);
    EXPECT_GT(rig.db.bufferCache().hitRatio(), 0.98);
}

TEST(ServerProcess, DirtyBlocksFlowThroughDbwrOnPressure)
{
    os::System sys(test::miniSystemConfig(2));
    db::DatabaseConfig dbcfg = test::miniDbConfig(8);
    dbcfg.sgaFrames = 512;
    dbcfg.warmDirtyFraction = 0.3;
    db::Database db(sys, dbcfg);
    odb::WorkloadConfig wcfg;
    wcfg.clients = 6;
    odb::OdbWorkload workload(db, wcfg);
    db.start();
    workload.start();
    db.instantWarm();
    sys.runFor(500 * tickPerMs);
    EXPECT_GT(db.dbwr().blocksWritten(), 0u);
    EXPECT_GT(sys.disks().dataWrites(), 0u);
}

TEST(ServerProcess, ResponseTimesRecorded)
{
    test::MiniOdb rig;
    rig.measure();
    const auto &lat = rig.workload.latencyMs(db::TxnType::NewOrder);
    ASSERT_GT(lat.count(), 0u);
    EXPECT_GT(lat.mean(), 0.0);
    EXPECT_LT(lat.mean(), 1000.0);
}

TEST(ServerProcess, DeterministicWithFixedSeed)
{
    auto run = [] {
        test::MiniOdb rig(2, 2, 4);
        rig.measure(50 * tickPerMs, 150 * tickPerMs);
        return rig.workload.committed();
    };
    EXPECT_EQ(run(), run());
}

TEST(ServerProcess, UserInstructionShareDominates)
{
    test::MiniOdb rig;
    rig.measure();
    double user = 0.0, os = 0.0;
    for (unsigned i = 0; i < rig.sys.numCpus(); ++i) {
        user += rig.sys.core(i).counters()[mem::ExecMode::User]
                    .instructions;
        os += rig.sys.core(i).counters()[mem::ExecMode::Os].instructions;
    }
    // Paper: user code is 70-80% of instructions.
    EXPECT_GT(user / (user + os), 0.6);
}

} // namespace
