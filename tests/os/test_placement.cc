/**
 * @file
 * Tests for island-aware placement: CPU affinity masks must be hard
 * (pinned processes never run on excluded CPUs), ready work must queue
 * rather than spill, and pinned schedules must stay deterministic.
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/system.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::os;

SystemConfig
twoSocketConfig()
{
    SystemConfig cfg;
    cfg.numCpus = 4;
    cfg.core.samplePeriod = 16;
    cfg.disks.dataDisks = 2;
    cfg.disks.logDisks = 1;
    cfg.topology.sockets = 2;
    // Short quantum so 5 ms runs see several preemption rounds.
    cfg.quantum = tickPerMs;
    return cfg;
}

/** Runs forever in fixed-size chunks, counting its dispatches. */
class SpinProcess : public Process
{
  public:
    explicit SpinProcess(const std::string &name)
        : Process(name)
    {}

    NextAction
    next(System &) override
    {
        ++turns;
        NextAction act;
        act.work.instructions = 20'000;
        act.after = NextAction::After::Continue;
        return act;
    }

    std::uint64_t turns = 0;
};

TEST(Placement, SocketAffinityMaskCoversSocketCpus)
{
    System sys(twoSocketConfig());
    ASSERT_EQ(sys.numSockets(), 2u);
    EXPECT_EQ(sys.socketOfCpu(0), 0u);
    EXPECT_EQ(sys.socketOfCpu(1), 0u);
    EXPECT_EQ(sys.socketOfCpu(2), 1u);
    EXPECT_EQ(sys.socketOfCpu(3), 1u);
    EXPECT_EQ(sys.socketAffinityMask(0, 1), 0b0011u);
    EXPECT_EQ(sys.socketAffinityMask(1, 1), 0b1100u);
    EXPECT_EQ(sys.socketAffinityMask(0, 2), 0b1111u);
}

TEST(Placement, PinnedProcessesNeverRunOnExcludedCpus)
{
    System sys(twoSocketConfig());
    for (int i = 0; i < 4; ++i) {
        auto p =
            std::make_unique<SpinProcess>("pin" + std::to_string(i));
        p->setCpuAffinity(sys.socketAffinityMask(1, 1)); // CPUs 2, 3.
        sys.spawn(std::move(p));
    }
    sys.runFor(5 * tickPerMs);
    EXPECT_EQ(sys.sched().busyTicks(0), 0u);
    EXPECT_EQ(sys.sched().busyTicks(1), 0u);
    EXPECT_GT(sys.sched().busyTicks(2), 0u);
    EXPECT_GT(sys.sched().busyTicks(3), 0u);
}

TEST(Placement, ReadyWorkQueuesOnItsAllowedCpu)
{
    // Three spinners pinned to one CPU: all must make progress (the
    // run queue rotates through eligible processes) and only that CPU
    // may accrue busy time.
    System sys(twoSocketConfig());
    SpinProcess *procs[3];
    for (int i = 0; i < 3; ++i) {
        auto p =
            std::make_unique<SpinProcess>("q" + std::to_string(i));
        p->setCpuAffinity(1u << 1);
        procs[i] = p.get();
        sys.spawn(std::move(p));
    }
    sys.runFor(5 * tickPerMs);
    for (int i = 0; i < 3; ++i)
        EXPECT_GT(procs[i]->turns, 0u) << "process " << i;
    EXPECT_EQ(sys.sched().busyTicks(0), 0u);
    EXPECT_GT(sys.sched().busyTicks(1), 0u);
    EXPECT_EQ(sys.sched().busyTicks(2), 0u);
    EXPECT_EQ(sys.sched().busyTicks(3), 0u);
}

TEST(Placement, ExplicitFullMaskMatchesDefaultSchedule)
{
    // Pinning to "every CPU" must reproduce the default (unpinned)
    // scheduler decisions exactly — the affinity checks reduce to the
    // legacy first-idle / frontmost-ready policy when nothing is
    // excluded. Single-socket systems so only scheduling can differ.
    SystemConfig cfg = twoSocketConfig();
    cfg.topology.sockets = 1;
    System unpinned(cfg);
    System pinned(cfg);
    for (int i = 0; i < 6; ++i) {
        unpinned.spawn(
            std::make_unique<SpinProcess>("p" + std::to_string(i)));
        auto p =
            std::make_unique<SpinProcess>("p" + std::to_string(i));
        p->setCpuAffinity(0b1111u); // All four CPUs, explicitly.
        pinned.spawn(std::move(p));
    }
    unpinned.runFor(5 * tickPerMs);
    pinned.runFor(5 * tickPerMs);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(unpinned.sched().busyTicks(c),
                  pinned.sched().busyTicks(c))
            << "cpu " << c;
    EXPECT_EQ(unpinned.sched().contextSwitches(),
              pinned.sched().contextSwitches());
}

TEST(Placement, PinnedScheduleIsDeterministic)
{
    // Two identical pinned systems must agree tick for tick.
    const auto run = [](std::uint64_t &ctx, Tick (&busy)[4]) {
        System sys(twoSocketConfig());
        for (int i = 0; i < 5; ++i) {
            auto p = std::make_unique<SpinProcess>(
                "d" + std::to_string(i));
            p->setCpuAffinity(
                i % 2 == 0 ? 0b0011u : 0b1100u);
            sys.spawn(std::move(p));
        }
        sys.runFor(5 * tickPerMs);
        ctx = sys.sched().contextSwitches();
        for (unsigned c = 0; c < 4; ++c)
            busy[c] = sys.sched().busyTicks(c);
    };
    std::uint64_t ctx_a = 0, ctx_b = 0;
    Tick busy_a[4], busy_b[4];
    run(ctx_a, busy_a);
    run(ctx_b, busy_b);
    EXPECT_EQ(ctx_a, ctx_b);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(busy_a[c], busy_b[c]) << "cpu " << c;
}

} // namespace
