/**
 * @file
 * Tests for the round-robin scheduler: dispatch, blocking, wake races,
 * quantum preemption, context-switch accounting.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "os/system.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::os;

SystemConfig
testConfig(unsigned cpus = 1)
{
    SystemConfig cfg;
    cfg.numCpus = cpus;
    cfg.core.samplePeriod = 16;
    cfg.core.codeL2RefsPerInstr = 0.0;
    cfg.core.dataL2RefsPerInstr = 0.0;
    cfg.disks.dataDisks = 2;
    cfg.disks.logDisks = 1;
    return cfg;
}

/** A process driven by a list of step functions. */
class ScriptedProcess : public Process
{
  public:
    using Step = std::function<NextAction(System &, Process &)>;

    ScriptedProcess(std::string name, std::vector<Step> steps)
        : Process(std::move(name)), steps_(std::move(steps))
    {}

    NextAction
    next(System &sys) override
    {
        if (idx_ >= steps_.size()) {
            NextAction act;
            act.after = NextAction::After::Terminate;
            return act;
        }
        return steps_[idx_++](sys, *this);
    }

    std::size_t stepsRun() const { return idx_; }

  private:
    std::vector<Step> steps_;
    std::size_t idx_ = 0;
};

NextAction
compute(std::uint64_t instr,
        NextAction::After after = NextAction::After::Continue)
{
    NextAction act;
    act.work.instructions = instr;
    act.work.codeBase = 0x1000'0000;
    act.work.codeBytes = 64;
    act.after = after;
    return act;
}

TEST(Scheduler, RunsProcessToTermination)
{
    System sys(testConfig());
    int runs = 0;
    auto *p = sys.spawn(std::make_unique<ScriptedProcess>(
        "p", std::vector<ScriptedProcess::Step>{
                 [&](System &, Process &) { ++runs; return compute(1000); },
                 [&](System &, Process &) { ++runs; return compute(1000); },
             }));
    sys.runFor(tickPerMs);
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(p->state(), Process::State::Done);
}

TEST(Scheduler, AssignsPidsAndPrivateRegions)
{
    System sys(testConfig());
    auto *a = sys.spawn(std::make_unique<ScriptedProcess>(
        "a", std::vector<ScriptedProcess::Step>{}));
    auto *b = sys.spawn(std::make_unique<ScriptedProcess>(
        "b", std::vector<ScriptedProcess::Step>{}));
    EXPECT_NE(a->pid(), b->pid());
    EXPECT_NE(a->privateBase(), b->privateBase());
    EXPECT_EQ(sys.processCount(), 2u);
}

TEST(Scheduler, BlockedProcessWokenByEvent)
{
    System sys(testConfig());
    bool resumed = false;
    Process *p = sys.spawn(std::make_unique<ScriptedProcess>(
        "p", std::vector<ScriptedProcess::Step>{
                 [](System &, Process &) {
                     // Block; the external event below wakes us.
                     return compute(100, NextAction::After::Block);
                 },
                 [&](System &, Process &) {
                     resumed = true;
                     return compute(100);
                 },
             }));
    sys.eq().schedule(5 * tickPerMs,
                      [&] { sys.wakeProcess(p, 1000); });
    sys.runFor(10 * tickPerMs);
    EXPECT_TRUE(resumed);
    EXPECT_EQ(p->state(), Process::State::Done);
}

TEST(Scheduler, WakeRaceDuringRetiringChunkIsNotLost)
{
    System sys(testConfig());
    bool resumed = false;
    sys.spawn(std::make_unique<ScriptedProcess>(
        "p", std::vector<ScriptedProcess::Step>{
                 [&](System &sys_ref, Process &self) {
                     // Wake arrives while this chunk retires (at the
                     // very same tick the chunk starts).
                     sys_ref.wakeProcess(&self, 0);
                     return compute(100000, NextAction::After::Block);
                 },
                 [&](System &, Process &) {
                     resumed = true;
                     return compute(100);
                 },
             }));
    sys.runFor(10 * tickPerMs);
    EXPECT_TRUE(resumed);
}

TEST(Scheduler, TwoProcessesShareOneCpu)
{
    System sys(testConfig(1));
    std::vector<int> order;
    auto mk = [&](int id) {
        std::vector<ScriptedProcess::Step> steps;
        for (int i = 0; i < 3; ++i) {
            steps.push_back([&order, id](System &, Process &) {
                order.push_back(id);
                // Block briefly so the other process gets the CPU.
                return compute(1000, NextAction::After::Block);
            });
        }
        return std::make_unique<ScriptedProcess>("p", std::move(steps));
    };
    Process *a = sys.spawn(mk(1));
    Process *b = sys.spawn(mk(2));
    // Self-rescheduling wake pump.
    std::function<void()> pump = [&] {
        if (a->state() == Process::State::Blocked)
            sys.wakeProcess(a, 0);
        if (b->state() == Process::State::Blocked)
            sys.wakeProcess(b, 0);
        if (a->state() != Process::State::Done ||
            b->state() != Process::State::Done)
            sys.eq().scheduleAfter(tickPerMs, pump);
    };
    sys.eq().schedule(tickPerMs, pump);
    sys.runFor(50 * tickPerMs);
    EXPECT_EQ(a->state(), Process::State::Done);
    EXPECT_EQ(b->state(), Process::State::Done);
    // Both made progress in interleaved fashion.
    EXPECT_EQ(order.size(), 6u);
}

TEST(Scheduler, QuantumPreemptionRotatesRunners)
{
    SystemConfig cfg = testConfig(1);
    cfg.quantum = tickPerMs; // Short quantum.
    System sys(cfg);
    int runs_a = 0, runs_b = 0;
    auto mk = [&](int *counter) {
        std::vector<ScriptedProcess::Step> steps;
        for (int i = 0; i < 40; ++i) {
            steps.push_back([counter](System &, Process &) {
                ++*counter;
                return compute(800000); // ~0.35 ms each.
            });
        }
        return std::make_unique<ScriptedProcess>("p", std::move(steps));
    };
    sys.spawn(mk(&runs_a));
    sys.spawn(mk(&runs_b));
    sys.runFor(10 * tickPerMs);
    // Without preemption B would starve until A terminates; with the
    // 1 ms quantum both must have run.
    EXPECT_GT(runs_a, 0);
    EXPECT_GT(runs_b, 0);
    EXPECT_GT(sys.sched().contextSwitches(), 4u);
}

TEST(Scheduler, ContextSwitchChargesKernelWork)
{
    SystemConfig cfg = testConfig(1);
    cfg.quantum = tickPerMs;
    System sys(cfg);
    auto mk = [&] {
        std::vector<ScriptedProcess::Step> steps;
        for (int i = 0; i < 20; ++i)
            steps.push_back(
                [](System &, Process &) { return compute(800000); });
        return std::make_unique<ScriptedProcess>("p", std::move(steps));
    };
    sys.spawn(mk());
    sys.spawn(mk());
    sys.runFor(10 * tickPerMs);
    // The switch path runs in kernel mode.
    double os_instr = 0.0;
    os_instr += sys.core(0).counters()[mem::ExecMode::Os].instructions;
    EXPECT_GT(os_instr, 0.0);
}

TEST(Scheduler, MultipleCpusRunInParallel)
{
    System sys(testConfig(2));
    Tick done_a = 0, done_b = 0;
    auto mk = [&](Tick *done) {
        return std::make_unique<ScriptedProcess>(
            "p", std::vector<ScriptedProcess::Step>{
                     [done](System &sys_ref, Process &) {
                         *done = sys_ref.now();
                         return compute(1600000); // 0.5 ms at CPI 0.5.
                     },
                 });
    };
    sys.spawn(mk(&done_a));
    sys.spawn(mk(&done_b));
    sys.runFor(tickPerMs);
    // Both started together on separate CPUs (after the identical
    // context-switch-in kernel chunk).
    EXPECT_EQ(done_a, done_b);
    EXPECT_LT(done_a, 100 * tickPerUs);
}

TEST(Scheduler, BusyTicksBoundedByWallTime)
{
    System sys(testConfig(1));
    auto mk = [&] {
        std::vector<ScriptedProcess::Step> steps;
        for (int i = 0; i < 100; ++i)
            steps.push_back(
                [](System &, Process &) { return compute(500000); });
        return std::make_unique<ScriptedProcess>("p", std::move(steps));
    };
    sys.spawn(mk());
    sys.beginMeasurement();
    sys.runFor(5 * tickPerMs);
    EXPECT_LE(sys.sched().busyTicks(0), sys.measurementWindow());
    EXPECT_GT(sys.cpuUtilization(0), 0.9); // CPU-bound process.
}

TEST(Scheduler, SleepProcessWakesAfterDuration)
{
    System sys(testConfig(1));
    Tick woke_at = 0;
    Process *p = sys.spawn(std::make_unique<ScriptedProcess>(
        "p", std::vector<ScriptedProcess::Step>{
                 [&](System &sys_ref, Process &self) {
                     sys_ref.sleepProcess(&self, 3 * tickPerMs);
                     return compute(100, NextAction::After::Block);
                 },
                 [&](System &sys_ref, Process &) {
                     woke_at = sys_ref.now();
                     return compute(100);
                 },
             }));
    sys.runFor(10 * tickPerMs);
    EXPECT_GE(woke_at, 3 * tickPerMs);
    EXPECT_EQ(p->state(), Process::State::Done);
}

} // namespace
