/**
 * @file
 * Tests for the System facade: kernel work construction, synchronous
 * disk reads with DMA + wake, measurement windows.
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/system.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::os;

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.numCpus = 2;
    cfg.core.samplePeriod = 16;
    cfg.disks.dataDisks = 2;
    cfg.disks.logDisks = 1;
    return cfg;
}

/** Blocks on one disk read, then terminates. */
class ReaderProcess : public Process
{
  public:
    ReaderProcess()
        : Process("reader")
    {}

    NextAction
    next(System &sys) override
    {
        NextAction act;
        if (phase_ == 0) {
            phase_ = 1;
            sys.chargeKernel(this, sys.kernelCosts().ioSubmitInstr);
            sys.diskReadForProcess(this, 1234, 0x4000'0000, 8192);
            act.work.instructions = 1000;
            act.after = NextAction::After::Block;
        } else {
            resumedAt = sys.now();
            act.work.instructions = 1000;
            act.after = NextAction::After::Terminate;
        }
        return act;
    }

    int phase_ = 0;
    Tick resumedAt = 0;
};

TEST(System, MakeKernelWorkTargetsKernelRegions)
{
    System sys(testConfig());
    const cpu::WorkItem wi = sys.makeKernelWork(5000, 42.0);
    EXPECT_EQ(wi.instructions, 5000u);
    EXPECT_EQ(wi.mode, mem::ExecMode::Os);
    EXPECT_EQ(wi.codeBase, mem::addrmap::kernelCodeBase);
    EXPECT_EQ(wi.privateBase, mem::addrmap::kernelDataBase);
    EXPECT_DOUBLE_EQ(wi.extraCycles, 42.0);
}

TEST(System, DiskReadBlocksAndWakesProcess)
{
    System sys(testConfig());
    auto owned = std::make_unique<ReaderProcess>();
    ReaderProcess *p = owned.get();
    sys.spawn(std::move(owned));
    sys.runFor(50 * tickPerMs);
    EXPECT_EQ(p->state(), Process::State::Done);
    // The read took at least the minimum positioning time.
    EXPECT_GE(p->resumedAt, ticksFromMs(0.8));
    EXPECT_EQ(sys.disks().dataReads(), 1u);
}

TEST(System, DiskReadChargesKernelInstructions)
{
    System sys(testConfig());
    sys.spawn(std::make_unique<ReaderProcess>());
    sys.runFor(50 * tickPerMs);
    double os_instr = 0.0;
    for (unsigned i = 0; i < sys.numCpus(); ++i)
        os_instr += sys.core(i).counters()[mem::ExecMode::Os].instructions;
    // Submit + completion paths plus context switching.
    EXPECT_GE(os_instr, static_cast<double>(
                            sys.kernelCosts().ioSubmitInstr +
                            sys.kernelCosts().ioCompleteInstr));
}

TEST(System, MeasurementWindowResetsCounters)
{
    System sys(testConfig());
    sys.spawn(std::make_unique<ReaderProcess>());
    sys.runFor(50 * tickPerMs);
    EXPECT_GT(sys.disks().totalReads(), 0u);
    sys.beginMeasurement();
    EXPECT_EQ(sys.disks().totalReads(), 0u);
    EXPECT_EQ(sys.sched().contextSwitches(), 0u);
    EXPECT_EQ(sys.measurementWindow(), 0u);
    EXPECT_DOUBLE_EQ(
        sys.core(0).counters()[mem::ExecMode::Os].instructions, 0.0);
    sys.runFor(10 * tickPerMs);
    EXPECT_EQ(sys.measurementWindow(), 10 * tickPerMs);
}

TEST(System, UtilizationZeroWhenIdle)
{
    System sys(testConfig());
    sys.beginMeasurement();
    sys.runFor(5 * tickPerMs);
    EXPECT_DOUBLE_EQ(sys.avgCpuUtilization(), 0.0);
}

TEST(System, DmaWriteDrainOnAsyncWrite)
{
    System sys(testConfig());
    bool done = false;
    sys.diskWriteAsync(55, 8192, [&] { done = true; });
    sys.runFor(50 * tickPerMs);
    EXPECT_TRUE(done);
    EXPECT_EQ(sys.disks().dataBytesWritten(), 8192u);
}

TEST(System, RunUntilIsAbsolute)
{
    System sys(testConfig());
    sys.runUntil(7 * tickPerMs);
    EXPECT_EQ(sys.now(), 7 * tickPerMs);
    sys.runFor(3 * tickPerMs);
    EXPECT_EQ(sys.now(), 10 * tickPerMs);
}

} // namespace
