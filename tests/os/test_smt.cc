/**
 * @file
 * Tests for the Hyper-Threading model: sibling mapping, shared
 * hierarchies, issue-bandwidth contention.
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/system.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::os;

SystemConfig
htConfig()
{
    SystemConfig cfg;
    cfg.numCpus = 4; // 2 physical cores x 2 threads.
    cfg.threadsPerCore = 2;
    cfg.core.samplePeriod = 16;
    cfg.core.codeL2RefsPerInstr = 0.0;
    cfg.core.dataL2RefsPerInstr = 0.0;
    cfg.disks.dataDisks = 2;
    cfg.disks.logDisks = 1;
    return cfg;
}

/** Burns a fixed instruction budget, then terminates. */
class BurnProcess : public Process
{
  public:
    explicit BurnProcess(int chunks)
        : Process("burn"), chunks_(chunks)
    {}

    NextAction
    next(System &) override
    {
        NextAction act;
        if (chunks_-- <= 0) {
            act.after = NextAction::After::Terminate;
            return act;
        }
        act.work.instructions = 400000;
        act.work.codeBase = 0x1000'0000;
        act.work.codeBytes = 64;
        return act;
    }

  private:
    int chunks_;
};

TEST(Smt, SiblingAndPhysicalMapping)
{
    System sys(htConfig());
    EXPECT_EQ(sys.numCpus(), 4u);
    EXPECT_EQ(sys.memsys().numCpus(), 2u); // Two hierarchies.
    EXPECT_EQ(sys.physicalOf(0), 0u);
    EXPECT_EQ(sys.physicalOf(1), 0u);
    EXPECT_EQ(sys.physicalOf(2), 1u);
    EXPECT_EQ(sys.siblingOf(0), 1u);
    EXPECT_EQ(sys.siblingOf(1), 0u);
    EXPECT_EQ(sys.siblingOf(3), 2u);
    EXPECT_EQ(sys.core(0).memCpuId(), sys.core(1).memCpuId());
    EXPECT_NE(sys.core(0).memCpuId(), sys.core(2).memCpuId());
}

TEST(Smt, NoSmtSiblingIsSelf)
{
    SystemConfig cfg = htConfig();
    cfg.threadsPerCore = 1;
    System sys(cfg);
    EXPECT_EQ(sys.siblingOf(2), 2u);
    EXPECT_EQ(sys.memsys().numCpus(), 4u);
}

TEST(Smt, InvalidConfigsPanic)
{
    SystemConfig odd = htConfig();
    odd.numCpus = 3;
    EXPECT_DEATH({ System sys(odd); }, "multiple of threadsPerCore");
    SystemConfig many = htConfig();
    many.threadsPerCore = 4;
    EXPECT_DEATH({ System sys(many); }, "must be 1 or 2");
}

TEST(Smt, SiblingContentionSlowsBothThreads)
{
    // One process on an otherwise idle machine vs two processes
    // pinned (by FIFO dispatch) onto sibling threads: each chunk
    // must take smtCycleFactor longer when the sibling is busy.
    SystemConfig cfg = htConfig();
    cfg.numCpus = 2; // One physical core, two threads.
    auto run = [&](int procs) {
        System sys(cfg);
        for (int i = 0; i < procs; ++i)
            sys.spawn(std::make_unique<BurnProcess>(40));
        sys.beginMeasurement();
        sys.runFor(40 * tickPerMs);
        double cycles = 0.0, instr = 0.0;
        for (unsigned i = 0; i < sys.numCpus(); ++i) {
            const auto t = sys.core(i).counters().total();
            cycles += t.cycles;
            instr += t.instructions;
        }
        return cycles / instr; // Effective CPI.
    };
    const double solo = run(1);
    const double duo = run(2);
    EXPECT_NEAR(duo / solo, cfg.smtCycleFactor, 0.08);
}

TEST(Smt, AggregateThroughputStillImproves)
{
    // Two CPU-bound processes on 1 core x 2 threads finish sooner
    // than on 1 core x 1 thread, despite the per-thread slowdown.
    auto finish_time = [](unsigned threads) {
        SystemConfig cfg = htConfig();
        cfg.numCpus = threads;
        cfg.threadsPerCore = threads;
        System sys(cfg);
        Process *a = sys.spawn(std::make_unique<BurnProcess>(30));
        Process *b = sys.spawn(std::make_unique<BurnProcess>(30));
        while (a->state() != Process::State::Done ||
               b->state() != Process::State::Done) {
            sys.runFor(tickPerMs);
        }
        return sys.now();
    };
    const Tick st = finish_time(1);
    const Tick ht = finish_time(2);
    EXPECT_LT(ht, st);
    // The gain is bounded by the issue sharing (2 / factor).
    EXPECT_GT(static_cast<double>(ht),
              static_cast<double>(st) * 0.6);
}

TEST(Smt, SiblingsShareCacheHierarchy)
{
    SystemConfig cfg = htConfig();
    System sys(cfg);
    // Thread 0 touches a line through the shared hierarchy; thread 1
    // must hit it, thread 2 (other core) must miss.
    const Addr line = 0; // Sampled line (index 0).
    sys.memsys().access(sys.core(0).memCpuId(), line,
                        mem::AccessKind::DataRead, mem::ExecMode::User,
                        0);
    const auto sibling_res = sys.memsys().access(
        sys.core(1).memCpuId(), line, mem::AccessKind::DataRead,
        mem::ExecMode::User, 0);
    EXPECT_FALSE(sibling_res.l3Miss());
    const auto other_res = sys.memsys().access(
        sys.core(2).memCpuId(), line, mem::AccessKind::DataRead,
        mem::ExecMode::User, 0);
    EXPECT_TRUE(other_res.l3Miss());
}

} // namespace
