/**
 * @file
 * Tests for the disk and disk-array models: queueing, service times,
 * routing, statistics.
 */

#include <gtest/gtest.h>

#include "os/disk.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::os;

DiskConfig
fastCfg()
{
    DiskConfig c;
    c.randomPositionMs = 4.0;
    c.minPositionMs = 1.0;
    c.sequentialMs = 0.3;
    c.transferMbPerSec = 40.0;
    return c;
}

TEST(Disk, CompletesARead)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 1);
    bool done = false;
    d.submit(DiskRequest{8192, false, false, [&] { done = true; }});
    EXPECT_TRUE(d.busy());
    eq.runAll();
    EXPECT_TRUE(done);
    EXPECT_FALSE(d.busy());
    EXPECT_EQ(d.completedReads(), 1u);
    EXPECT_EQ(d.bytesRead(), 8192u);
}

TEST(Disk, RandomServiceRespectsMinimum)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 2);
    Tick start = eq.curTick();
    Tick done_at = 0;
    d.submit(DiskRequest{8192, false, false,
                         [&] { done_at = eq.curTick(); }});
    eq.runAll();
    // At least min positioning plus the transfer time.
    EXPECT_GE(done_at - start, ticksFromMs(1.0));
}

TEST(Disk, SequentialFasterThanRandom)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 3);
    RunningStat seq_ms, rnd_ms;
    for (int i = 0; i < 50; ++i) {
        Tick t0 = eq.curTick();
        d.submit(DiskRequest{8192, true, true,
                             [&, t0] {
                                 seq_ms.add(secondsFromTicks(
                                                eq.curTick() - t0) *
                                            1e3);
                             }});
        eq.runAll();
        t0 = eq.curTick();
        d.submit(DiskRequest{8192, false, false,
                             [&, t0] {
                                 rnd_ms.add(secondsFromTicks(
                                                eq.curTick() - t0) *
                                            1e3);
                             }});
        eq.runAll();
    }
    EXPECT_LT(seq_ms.mean() * 2.0, rnd_ms.mean());
}

TEST(Disk, FifoQueueing)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 4);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        d.submit(DiskRequest{8192, false, false,
                             [&order, i] { order.push_back(i); }});
    }
    EXPECT_EQ(d.queueDepth(), 3u); // One in service.
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Disk, LatencyIncludesQueueing)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 5);
    for (int i = 0; i < 8; ++i)
        d.submit(DiskRequest{8192, false, false, nullptr});
    eq.runAll();
    // The last request waited behind seven others.
    EXPECT_GT(d.latency().max(), 4.0 * d.latency().min());
}

TEST(Disk, TracksBusyTime)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 6);
    d.submit(DiskRequest{8192, false, false, nullptr});
    eq.runAll();
    EXPECT_GT(d.busyTicks(), 0u);
    EXPECT_LE(d.busyTicks(), eq.curTick());
}

TEST(Disk, ResetStats)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 7);
    d.submit(DiskRequest{8192, true, false, nullptr});
    eq.runAll();
    d.resetStats();
    EXPECT_EQ(d.completedWrites(), 0u);
    EXPECT_EQ(d.bytesWritten(), 0u);
    EXPECT_EQ(d.busyTicks(), 0u);
}

TEST(DiskArray, RoutesBlocksAcrossDataDisks)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 4;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 11);
    for (std::uint64_t b = 0; b < 64; ++b)
        arr.readBlock(b, 8192, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.totalReads(), 64u);
    // Multiplicative-hash striping should touch every disk.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GT(arr.dataDisk(i).completedReads(), 0u);
}

TEST(DiskArray, SameBlockSameDisk)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 4;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 12);
    for (int i = 0; i < 10; ++i)
        arr.readBlock(777, 8192, nullptr);
    eq.runAll();
    unsigned disks_used = 0;
    for (unsigned i = 0; i < 4; ++i)
        disks_used += arr.dataDisk(i).completedReads() > 0;
    EXPECT_EQ(disks_used, 1u);
}

TEST(DiskArray, LogWritesGoToLogDisks)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 2;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 13);
    for (int i = 0; i < 6; ++i)
        arr.writeLog(4096, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.logWrites(), 6u);
    EXPECT_EQ(arr.dataWrites(), 0u);
    EXPECT_EQ(arr.logBytesWritten(), 6u * 4096u);
}

TEST(DiskArray, SplitsDataAndLogStatistics)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 14);
    arr.readBlock(1, 8192, nullptr);
    arr.writeBlock(2, 8192, nullptr);
    arr.writeLog(1024, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.dataBytesRead(), 8192u);
    EXPECT_EQ(arr.dataBytesWritten(), 8192u);
    EXPECT_EQ(arr.logBytesWritten(), 1024u);
    EXPECT_EQ(arr.totalWrites(), 2u);
}

TEST(DiskArray, UtilizationOverWindow)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 15);
    arr.readBlock(1, 8192, nullptr);
    eq.runAll();
    const double u = arr.avgDataUtilization(eq.curTick());
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_GT(arr.avgReadLatencyMs(), 0.0);
}

} // namespace
