/**
 * @file
 * Tests for the disk and disk-array models: queueing, service times,
 * routing, statistics, config validation, and fault injection
 * (transient-error retries, degraded drives, whole-drive failure
 * re-routing).
 */

#include <gtest/gtest.h>

#include <limits>

#include "os/disk.hh"
#include "sim/fault.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::os;

DiskConfig
fastCfg()
{
    DiskConfig c;
    c.randomPositionMs = 4.0;
    c.minPositionMs = 1.0;
    c.sequentialMs = 0.3;
    c.transferMbPerSec = 40.0;
    return c;
}

TEST(Disk, CompletesARead)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 1);
    bool done = false;
    d.submit(DiskRequest{8192, false, false, [&] { done = true; }});
    EXPECT_TRUE(d.busy());
    eq.runAll();
    EXPECT_TRUE(done);
    EXPECT_FALSE(d.busy());
    EXPECT_EQ(d.completedReads(), 1u);
    EXPECT_EQ(d.bytesRead(), 8192u);
}

TEST(Disk, RandomServiceRespectsMinimum)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 2);
    Tick start = eq.curTick();
    Tick done_at = 0;
    d.submit(DiskRequest{8192, false, false,
                         [&] { done_at = eq.curTick(); }});
    eq.runAll();
    // At least min positioning plus the transfer time.
    EXPECT_GE(done_at - start, ticksFromMs(1.0));
}

TEST(Disk, SequentialFasterThanRandom)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 3);
    RunningStat seq_ms, rnd_ms;
    for (int i = 0; i < 50; ++i) {
        Tick t0 = eq.curTick();
        d.submit(DiskRequest{8192, true, true,
                             [&, t0] {
                                 seq_ms.add(secondsFromTicks(
                                                eq.curTick() - t0) *
                                            1e3);
                             }});
        eq.runAll();
        t0 = eq.curTick();
        d.submit(DiskRequest{8192, false, false,
                             [&, t0] {
                                 rnd_ms.add(secondsFromTicks(
                                                eq.curTick() - t0) *
                                            1e3);
                             }});
        eq.runAll();
    }
    EXPECT_LT(seq_ms.mean() * 2.0, rnd_ms.mean());
}

TEST(Disk, FifoQueueing)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 4);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        d.submit(DiskRequest{8192, false, false,
                             [&order, i] { order.push_back(i); }});
    }
    EXPECT_EQ(d.queueDepth(), 3u); // One in service.
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Disk, LatencyIncludesQueueing)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 5);
    for (int i = 0; i < 8; ++i)
        d.submit(DiskRequest{8192, false, false, nullptr});
    eq.runAll();
    // The last request waited behind seven others.
    EXPECT_GT(d.latency().max(), 4.0 * d.latency().min());
}

TEST(Disk, TracksBusyTime)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 6);
    d.submit(DiskRequest{8192, false, false, nullptr});
    eq.runAll();
    EXPECT_GT(d.busyTicks(), 0u);
    EXPECT_LE(d.busyTicks(), eq.curTick());
}

TEST(Disk, ResetStats)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 7);
    d.submit(DiskRequest{8192, true, false, nullptr});
    eq.runAll();
    d.resetStats();
    EXPECT_EQ(d.completedWrites(), 0u);
    EXPECT_EQ(d.bytesWritten(), 0u);
    EXPECT_EQ(d.busyTicks(), 0u);
}

TEST(DiskArray, RoutesBlocksAcrossDataDisks)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 4;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 11);
    for (std::uint64_t b = 0; b < 64; ++b)
        arr.readBlock(b, 8192, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.totalReads(), 64u);
    // Multiplicative-hash striping should touch every disk.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GT(arr.dataDisk(i).completedReads(), 0u);
}

TEST(DiskArray, SameBlockSameDisk)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 4;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 12);
    for (int i = 0; i < 10; ++i)
        arr.readBlock(777, 8192, nullptr);
    eq.runAll();
    unsigned disks_used = 0;
    for (unsigned i = 0; i < 4; ++i)
        disks_used += arr.dataDisk(i).completedReads() > 0;
    EXPECT_EQ(disks_used, 1u);
}

TEST(DiskArray, LogWritesGoToLogDisks)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 2;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 13);
    for (int i = 0; i < 6; ++i)
        arr.writeLog(4096, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.logWrites(), 6u);
    EXPECT_EQ(arr.dataWrites(), 0u);
    EXPECT_EQ(arr.logBytesWritten(), 6u * 4096u);
}

TEST(DiskArray, SplitsDataAndLogStatistics)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 14);
    arr.readBlock(1, 8192, nullptr);
    arr.writeBlock(2, 8192, nullptr);
    arr.writeLog(1024, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.dataBytesRead(), 8192u);
    EXPECT_EQ(arr.dataBytesWritten(), 8192u);
    EXPECT_EQ(arr.logBytesWritten(), 1024u);
    EXPECT_EQ(arr.totalWrites(), 2u);
}

TEST(DiskArray, ReadLogRoundRobinsAcrossLogDisks)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 2;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 16);
    for (int i = 0; i < 4; ++i)
        arr.readLog(4096, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.logDisk(0).completedReads(), 2u);
    EXPECT_EQ(arr.logDisk(1).completedReads(), 2u);
    EXPECT_EQ(arr.dataReads(), 0u);
}

TEST(DiskArray, QueueAllocationsStayFlatUnderChurn)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 17);
    // Reach the high-water queue depth once.
    for (std::uint64_t b = 0; b < 16; ++b)
        arr.readBlock(b, 8192, nullptr);
    for (int i = 0; i < 4; ++i)
        arr.writeLog(4096, nullptr);
    eq.runAll();
    const std::uint64_t allocs = arr.queueAllocations();
    EXPECT_GT(allocs, 0u);

    // Steady-state churn below the mark recycles pooled nodes.
    for (int round = 0; round < 50; ++round) {
        for (std::uint64_t b = 0; b < 16; ++b)
            arr.readBlock(b, 8192, nullptr);
        for (int i = 0; i < 4; ++i)
            arr.writeLog(4096, nullptr);
        eq.runAll();
    }
    EXPECT_EQ(arr.queueAllocations(), allocs);
}

TEST(DiskDeathTest, RejectsNegativeLatency)
{
    EventQueue eq;
    DiskConfig cfg = fastCfg();
    cfg.randomPositionMs = -1.0;
    EXPECT_EXIT({ Disk d("bad", cfg, eq, 1); },
                ::testing::ExitedWithCode(1), "randomPositionMs");
}

TEST(DiskDeathTest, RejectsNanLatency)
{
    EventQueue eq;
    DiskConfig cfg = fastCfg();
    cfg.sequentialMs = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EXIT({ Disk d("bad", cfg, eq, 1); },
                ::testing::ExitedWithCode(1), "sequentialMs");
}

TEST(DiskDeathTest, RejectsNonPositiveTransferRate)
{
    EventQueue eq;
    DiskConfig cfg = fastCfg();
    cfg.transferMbPerSec = 0.0;
    EXPECT_EXIT({ Disk d("bad", cfg, eq, 1); },
                ::testing::ExitedWithCode(1), "transferMbPerSec");
}

TEST(DiskFaults, TransientErrorsRetryInPlaceAndStillComplete)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 21);
    sim::FaultConfig fc;
    fc.diskTransientProb = 1.0; // Every attempt errors out.
    fc.diskMaxRetries = 3;
    sim::FaultPlan plan(fc, 99);
    d.setFaultPlan(&plan);

    bool done = false;
    d.submit(DiskRequest{8192, false, false, [&] { done = true; }});
    eq.runAll();

    // The controller burns every retry, then completes via spare
    // remap: latency-only degradation, never a lost request.
    EXPECT_TRUE(done);
    EXPECT_EQ(d.completedReads(), 1u);
    EXPECT_EQ(plan.stats().diskTransientErrors, 3u);
    EXPECT_EQ(plan.stats().diskRetriesExhausted, 1u);
}

TEST(DiskFaults, RetriesAddLatencyOverAHealthyDisk)
{
    // Same config and seed; only one disk has the fault plan bound.
    EventQueue eq_ok, eq_bad;
    Disk ok("ok", fastCfg(), eq_ok, 22);
    Disk bad("bad", fastCfg(), eq_bad, 22);
    sim::FaultConfig fc;
    fc.diskTransientProb = 1.0;
    fc.diskMaxRetries = 2;
    sim::FaultPlan plan(fc, 7);
    bad.setFaultPlan(&plan);

    Tick ok_done = 0, bad_done = 0;
    // Sequential service is deterministic (no positioning draw), so
    // the only difference is the retry spans plus backoff.
    ok.submit(DiskRequest{8192, false, true,
                          [&] { ok_done = eq_ok.curTick(); }});
    bad.submit(DiskRequest{8192, false, true,
                           [&] { bad_done = eq_bad.curTick(); }});
    eq_ok.runAll();
    eq_bad.runAll();

    // Three service spans plus two backoffs vs one span.
    EXPECT_EQ(bad_done, 3 * ok_done + plan.diskBackoffTicks(1) +
                            plan.diskBackoffTicks(2));
}

TEST(DiskFaults, DegradeStretchesServiceTime)
{
    EventQueue eq;
    Disk d("d0", fastCfg(), eq, 23);
    Tick t0 = eq.curTick(), healthy = 0, degraded = 0;
    d.submit(DiskRequest{8192, false, true,
                         [&] { healthy = eq.curTick() - t0; }});
    eq.runAll();

    d.degrade(3.0);
    const Tick t1 = eq.curTick();
    d.submit(DiskRequest{8192, false, true,
                         [&] { degraded = eq.curTick() - t1; }});
    eq.runAll();

    EXPECT_GE(degraded, 2 * healthy);
    EXPECT_LE(degraded, 4 * healthy);
}

TEST(DiskFaults, DriveFailureReRoutesQueuedWork)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 24);

    sim::FaultConfig fc;
    sim::DriveFaultEvent ev;
    ev.atMs = 0.5; // Mid-first-service: both drives have queues.
    ev.drive = 0;
    ev.fail = true;
    fc.driveEvents.push_back(ev);
    sim::FaultPlan plan(fc, 31);
    arr.bindFaults(&plan);

    for (std::uint64_t b = 0; b < 32; ++b)
        arr.readBlock(b, 8192, nullptr);
    eq.runAll();

    // Nothing is lost: the in-flight request finishes on the dying
    // drive, its queue drains through the survivor.
    EXPECT_EQ(arr.totalReads(), 32u);
    EXPECT_TRUE(arr.dataDisk(0).failed());
    EXPECT_FALSE(arr.dataDisk(1).failed());
    EXPECT_EQ(plan.stats().driveFailures, 1u);
    EXPECT_GT(plan.stats().reroutedRequests, 0u);

    // New traffic for blocks striped to the dead drive re-routes.
    const std::uint64_t before = arr.dataDisk(0).completedReads();
    for (std::uint64_t b = 0; b < 32; ++b)
        arr.readBlock(b, 8192, nullptr);
    eq.runAll();
    EXPECT_EQ(arr.dataDisk(0).completedReads(), before);
    EXPECT_EQ(arr.totalReads(), 64u);
}

TEST(DiskFaults, DuplicateFailureEventIsIdempotent)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 25);

    sim::FaultConfig fc;
    sim::DriveFaultEvent ev;
    ev.atMs = 0.1;
    ev.drive = 0;
    ev.fail = true;
    fc.driveEvents.push_back(ev);
    ev.atMs = 0.2; // Second kill of the same drive: a no-op.
    fc.driveEvents.push_back(ev);
    sim::FaultPlan plan(fc, 32);
    arr.bindFaults(&plan);

    for (std::uint64_t b = 0; b < 8; ++b)
        arr.readBlock(b, 8192, nullptr);
    eq.runAll();
    EXPECT_EQ(plan.stats().driveFailures, 1u);
    EXPECT_EQ(arr.totalReads(), 8u);
}

TEST(DiskFaultsDeathTest, RejectsOutOfRangeDriveIndex)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 26);

    sim::FaultConfig fc;
    sim::DriveFaultEvent ev;
    ev.drive = 5; // Only two data disks exist.
    ev.fail = true;
    fc.driveEvents.push_back(ev);
    sim::FaultPlan plan(fc, 33);
    EXPECT_EXIT({ arr.bindFaults(&plan); },
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(DiskArray, UtilizationOverWindow)
{
    EventQueue eq;
    DiskArrayConfig cfg;
    cfg.dataDisks = 2;
    cfg.logDisks = 1;
    cfg.disk = fastCfg();
    DiskArray arr(cfg, eq, 15);
    arr.readBlock(1, 8192, nullptr);
    eq.runAll();
    const double u = arr.avgDataUtilization(eq.curTick());
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_GT(arr.avgReadLatencyMs(), 0.0);
}

} // namespace
