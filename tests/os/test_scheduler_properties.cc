/**
 * @file
 * Parameterized scheduler properties: fairness under preemption across
 * quanta, busy-time conservation across CPU counts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/system.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::os;

/** Burns chunks forever (until the run window ends). */
class HogProcess : public Process
{
  public:
    HogProcess()
        : Process("hog")
    {}

    NextAction
    next(System &) override
    {
        ++chunks;
        NextAction act;
        act.work.instructions = 200000;
        act.work.codeBase = 0x1000'0000;
        act.work.codeBytes = 64;
        return act;
    }

    int chunks = 0;
};

SystemConfig
cfgWith(Tick quantum, unsigned cpus)
{
    SystemConfig cfg;
    cfg.numCpus = cpus;
    cfg.quantum = quantum;
    cfg.core.samplePeriod = 16;
    cfg.core.codeL2RefsPerInstr = 0.0;
    cfg.core.dataL2RefsPerInstr = 0.0;
    cfg.disks.dataDisks = 1;
    cfg.disks.logDisks = 1;
    return cfg;
}

class QuantumFairness : public ::testing::TestWithParam<Tick>
{
};

TEST_P(QuantumFairness, CompetingHogsShareTheCpu)
{
    System sys(cfgWith(GetParam(), 1));
    std::vector<HogProcess *> hogs;
    for (int i = 0; i < 3; ++i) {
        auto p = std::make_unique<HogProcess>();
        hogs.push_back(p.get());
        sys.spawn(std::move(p));
    }
    sys.runFor(60 * tickPerMs);
    int total = 0, lo = 1 << 30, hi = 0;
    for (const auto *h : hogs) {
        total += h->chunks;
        lo = std::min(lo, h->chunks);
        hi = std::max(hi, h->chunks);
    }
    EXPECT_GT(total, 10);
    // Round-robin preemption keeps progress within 2x across peers.
    EXPECT_GT(lo, 0);
    EXPECT_LE(hi, 2 * lo + 2);
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumFairness,
                         ::testing::Values(tickPerMs, 5 * tickPerMs,
                                           20 * tickPerMs));

class CpuScaling : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CpuScaling, BusyTimeConservedAcrossCpus)
{
    const unsigned cpus = GetParam();
    System sys(cfgWith(5 * tickPerMs, cpus));
    for (unsigned i = 0; i < cpus; ++i)
        sys.spawn(std::make_unique<HogProcess>());
    sys.beginMeasurement();
    sys.runFor(20 * tickPerMs);
    // With one hog per CPU, every CPU is (almost) fully busy.
    for (unsigned i = 0; i < cpus; ++i)
        EXPECT_GT(sys.cpuUtilization(i), 0.95) << "cpu " << i;
    EXPECT_GT(sys.avgCpuUtilization(), 0.95);
}

TEST_P(CpuScaling, ThroughputScalesWithCpus)
{
    const unsigned cpus = GetParam();
    System sys(cfgWith(5 * tickPerMs, cpus));
    std::vector<HogProcess *> hogs;
    for (unsigned i = 0; i < cpus; ++i) {
        auto p = std::make_unique<HogProcess>();
        hogs.push_back(p.get());
        sys.spawn(std::move(p));
    }
    sys.runFor(20 * tickPerMs);
    int total = 0;
    for (const auto *h : hogs)
        total += h->chunks;
    // Independent hogs on independent CPUs: near-linear chunk totals.
    System ref(cfgWith(5 * tickPerMs, 1));
    auto p = std::make_unique<HogProcess>();
    HogProcess *one = p.get();
    ref.spawn(std::move(p));
    ref.runFor(20 * tickPerMs);
    EXPECT_NEAR(static_cast<double>(total),
                static_cast<double>(one->chunks) * cpus,
                0.15 * one->chunks * cpus);
}

INSTANTIATE_TEST_SUITE_P(Cpus, CpuScaling,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
