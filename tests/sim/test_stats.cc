/**
 * @file
 * Tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

namespace
{

using namespace odbsim;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -3.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(Histogram, CountsIntoCorrectBuckets)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(5.7);
    h.add(9.99);
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[5], 2u);
    EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, OutOfRangeClamped)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.totalCount(), 2u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.5, 10);
    EXPECT_EQ(h.totalCount(), 10u);
    EXPECT_EQ(h.buckets()[1], 10u);
}

TEST(Histogram, QuantileOfUniformFill)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, BucketGeometry)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(4), 18.0);
}

TEST(UtilizationTracker, ComputesBusyFraction)
{
    UtilizationTracker u;
    u.record(30, true);
    u.record(70, false);
    EXPECT_DOUBLE_EQ(u.utilization(), 0.3);
    EXPECT_EQ(u.busyTime(), 30u);
    EXPECT_EQ(u.totalTime(), 100u);
    u.reset();
    EXPECT_DOUBLE_EQ(u.utilization(), 0.0);
}

} // namespace
