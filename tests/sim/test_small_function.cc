/**
 * @file
 * Unit tests for SmallFunction: inline vs heap storage, move-only
 * semantics, in-place assignment, and destruction accounting.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/small_function.hh"

namespace
{

using namespace odbsim;

using Fn = SmallFunction<int(), 64>;

TEST(SmallFunction, DefaultConstructedIsEmpty)
{
    Fn f;
    EXPECT_FALSE(f);
    Fn g(nullptr);
    EXPECT_FALSE(g);
}

TEST(SmallFunction, InvokesInlineCallable)
{
    int x = 41;
    Fn f = [&x] { return ++x; };
    ASSERT_TRUE(f);
    EXPECT_EQ(f(), 42);
    EXPECT_EQ(f(), 43);
}

TEST(SmallFunction, PassesArgumentsAndReturnsResult)
{
    SmallFunction<int(int, int), 64> add = [](int a, int b) {
        return a + b;
    };
    EXPECT_EQ(add(2, 40), 42);
}

TEST(SmallFunction, SmallCaptureStaysInline)
{
    struct Small
    {
        std::uint64_t v[4];
    };
    static_assert(Fn::fitsInline<Small>());
    struct Big
    {
        std::uint64_t v[16];
    };
    static_assert(!Fn::fitsInline<Big>());
}

TEST(SmallFunction, HeapFallbackInvokes)
{
    struct Big
    {
        std::uint64_t v[16]; // 128 bytes > 64-byte inline buffer
    };
    Big big{};
    big.v[0] = 40;
    big.v[15] = 2;
    Fn f = [big] { return static_cast<int>(big.v[0] + big.v[15]); };
    EXPECT_EQ(f(), 42);
}

TEST(SmallFunction, MoveTransfersOwnershipAndEmptiesSource)
{
    int calls = 0;
    Fn a = [&calls] { return ++calls; };
    Fn b = std::move(a);
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): tested on purpose
    ASSERT_TRUE(b);
    EXPECT_EQ(b(), 1);

    Fn c;
    c = std::move(b);
    EXPECT_FALSE(b); // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(c(), 2);
}

TEST(SmallFunction, HoldsMoveOnlyCapture)
{
    auto p = std::make_unique<int>(7);
    Fn f = [p = std::move(p)] { return *p; };
    EXPECT_EQ(f(), 7);
    Fn g = std::move(f);
    EXPECT_EQ(g(), 7);
}

struct DtorCounter
{
    int *count;
    explicit DtorCounter(int *c) : count(c) {}
    DtorCounter(DtorCounter &&o) noexcept : count(o.count)
    {
        o.count = nullptr;
    }
    DtorCounter(const DtorCounter &) = delete;
    ~DtorCounter()
    {
        if (count)
            ++*count;
    }
    int operator()() const { return 1; }
};

TEST(SmallFunction, DestroysInlineCallableExactlyOnce)
{
    int destroyed = 0;
    {
        Fn f{DtorCounter(&destroyed)};
        EXPECT_EQ(f(), 1);
        Fn g = std::move(f); // relocation must not double-count
        EXPECT_EQ(g(), 1);
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(SmallFunction, DestroysHeapCallableExactlyOnce)
{
    struct BigCounter : DtorCounter
    {
        std::uint64_t pad[16] = {};
        using DtorCounter::DtorCounter;
    };
    int destroyed = 0;
    {
        Fn f{BigCounter(&destroyed)};
        EXPECT_EQ(f(), 1);
        Fn g = std::move(f); // heap move steals the pointer
        EXPECT_EQ(g(), 1);
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(SmallFunction, ResetDestroysAndEmpties)
{
    int destroyed = 0;
    Fn f{DtorCounter(&destroyed)};
    f.reset();
    EXPECT_FALSE(f);
    EXPECT_EQ(destroyed, 1);
    f.reset(); // idempotent
    EXPECT_EQ(destroyed, 1);
}

TEST(SmallFunction, NullptrAssignmentClears)
{
    Fn f = [] { return 1; };
    f = nullptr;
    EXPECT_FALSE(f);
}

TEST(SmallFunction, CallableAssignmentReplacesInPlace)
{
    int destroyed = 0;
    Fn f{DtorCounter(&destroyed)};
    // Assigning a new callable constructs it directly in the buffer
    // and must destroy the previous occupant first.
    f = [] { return 99; };
    EXPECT_EQ(destroyed, 1);
    EXPECT_EQ(f(), 99);
}

TEST(SmallFunction, SelfMoveAssignIsSafe)
{
    Fn f = [] { return 5; };
    Fn &ref = f;
    f = std::move(ref);
    ASSERT_TRUE(f);
    EXPECT_EQ(f(), 5);
}

} // namespace
