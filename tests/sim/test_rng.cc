/**
 * @file
 * Tests for the deterministic RNG and the Zipf generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/rng.hh"

namespace
{

using namespace odbsim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(3.0, 5.0);
        ASSERT_GE(u, 3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversDomain)
{
    Rng r(11);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 5000; ++i)
        ++seen[r.below(8)];
    EXPECT_EQ(seen.size(), 8u);
    for (const auto &[v, n] : seen)
        EXPECT_GT(n, 400) << "value " << v << " underrepresented";
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(19);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double v = r.exponential(4.0);
        ASSERT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000.0, 4.0, 0.15);
}

TEST(Rng, NormalHasRequestedMoments)
{
    Rng r(23);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, NurandStaysInRange)
{
    Rng r(29);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nurand(1023, 0, 2999);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 2999);
    }
}

TEST(Rng, NurandIsNonUniform)
{
    // The bit-OR construction concentrates mass; the most popular
    // octile should clearly beat the least popular one.
    Rng r(31);
    int bucket[8] = {};
    for (int i = 0; i < 40000; ++i)
        ++bucket[r.nurand(1023, 0, 2999) * 8 / 3000];
    int lo = bucket[0], hi = bucket[0];
    for (int b : bucket) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    EXPECT_GT(hi, lo * 3 / 2);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(42);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng r(37);
    ZipfGenerator z(1000, 0.8);
    std::uint64_t zero = 0, mid = 0;
    for (int i = 0; i < 50000; ++i) {
        const auto v = z.sample(r);
        ASSERT_LT(v, 1000u);
        zero += v == 0;
        mid += v == 500;
    }
    EXPECT_GT(zero, 20 * std::max<std::uint64_t>(mid, 1));
}

/** Property: Zipf samples stay in range for many (n, theta) combos. */
class ZipfProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{
};

TEST_P(ZipfProperty, SamplesInDomainAndSkewed)
{
    const auto [n, theta] = GetParam();
    Rng r(41);
    ZipfGenerator z(n, theta);
    EXPECT_EQ(z.domain(), n);
    std::uint64_t first_decile = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) {
        const auto v = z.sample(r);
        ASSERT_LT(v, n);
        first_decile += v < (n + 9) / 10;
    }
    // Zipf concentrates well above the uniform 10% in the top decile.
    EXPECT_GT(first_decile, samples / 7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(10, 100, 10000,
                                                        2000000),
                       ::testing::Values(0.5, 0.8, 0.99)));

} // namespace
