/**
 * @file
 * Tests for the error-reporting macros (gem5-style panic/fatal/warn).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace
{

TEST(Logging, ConcatStreamsArguments)
{
    EXPECT_EQ(odbsim::detail::concat("a", 1, '-', 2.5), "a1-2.5");
    EXPECT_EQ(odbsim::detail::concat(), "");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH({ odbsim_panic("boom ", 42); }, "panic: boom 42");
}

TEST(Logging, FatalExitsWithError)
{
    EXPECT_EXIT({ odbsim_fatal("bad config ", "x"); },
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(Logging, AssertPassesOnTrue)
{
    odbsim_assert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_DEATH({ odbsim_assert(false, "ctx ", 7); },
                 "assertion 'false' failed: ctx 7");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    odbsim_warn("just a warning ", 1);
    odbsim_inform("status ", 2);
    SUCCEED();
}

} // namespace
