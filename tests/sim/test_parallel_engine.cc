/**
 * @file
 * Unit tests for sim::ParallelEngine on a synthetic multi-island
 * model: bit-exactness of the parallel path against the shared-queue
 * oracle at several worker counts, S=1 degeneracy to the serial
 * engine, epoch-grid independence from run() call splits, mailbox
 * spill behaviour, and the fatal lookahead contract.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"
#include "sim/rng.hh"

namespace
{

using odbsim::EventQueue;
using odbsim::Rng;
using odbsim::Tick;
using odbsim::sim::ParallelEngine;
using odbsim::sim::ParallelEngineConfig;
using odbsim::sim::SpscMailbox;

std::uint64_t
mix(std::uint64_t acc, std::uint64_t v)
{
    return acc * 6364136223846793005ULL + v;
}

/**
 * A synthetic island model: each island runs a self-rescheduling
 * local event that mixes RNG draws into an accumulator and sometimes
 * sends a payload to a peer at now + L + jitter. All cross-island
 * effects flow through sendCross, so any execution strategy of the
 * engine must produce identical accumulators.
 */
struct SyntheticModel
{
    struct Island
    {
        std::uint64_t acc = 0;
        Rng rng{0};
    };

    ParallelEngine *eng = nullptr;
    std::vector<Island> islands;
    Tick lookahead = 0;

    void
    start(ParallelEngine &engine, std::uint64_t seed)
    {
        eng = &engine;
        lookahead = engine.lookahead();
        islands.clear();
        islands.resize(engine.islands());
        for (unsigned i = 0; i < engine.islands(); ++i) {
            islands[i].rng = Rng(seed + 17 * i);
            arm(i);
        }
    }

    void
    arm(unsigned i)
    {
        const Tick now = eng->islandQueue(i).curTick();
        const Tick gap = 1 + islands[i].rng.below(400);
        eng->schedule(i, now + gap, [this, i] { tick(i); });
    }

    void
    tick(unsigned i)
    {
        Island &s = islands[i];
        s.acc = mix(s.acc, s.rng.next());
        const unsigned n = eng->islands();
        if (n > 1 && s.rng.chance(0.25)) {
            unsigned t = static_cast<unsigned>(s.rng.below(n - 1));
            if (t >= i)
                ++t;
            const std::uint64_t payload = s.rng.next();
            const Tick when = eng->islandQueue(i).curTick() + lookahead +
                              s.rng.below(lookahead);
            std::uint64_t *dst = &islands[t].acc;
            eng->sendCross(i, t, when, [dst, payload] {
                *dst = mix(*dst, payload);
            });
        }
        arm(i);
    }

    std::uint64_t
    digest() const
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const Island &s : islands)
            h = mix(h, s.acc);
        return h;
    }
};

struct RunOutcome
{
    std::uint64_t digest;
    std::uint64_t fired;
    std::uint64_t crossSent;
    std::uint64_t crossDelivered;
    std::uint64_t epochs;
};

RunOutcome
runSynthetic(unsigned islands, unsigned workers, bool oracle, Tick limit,
             unsigned segments = 1)
{
    ParallelEngineConfig cfg;
    cfg.islands = islands;
    cfg.lookahead = 10000;
    cfg.workers = workers;
    cfg.oracle = oracle;
    ParallelEngine eng(cfg);
    SyntheticModel model;
    model.start(eng, 0x5eed1ULL);
    for (unsigned s = 1; s <= segments; ++s)
        eng.run(limit * s / segments);
    return {model.digest(), eng.eventsFired(), eng.crossSent(),
            eng.crossDelivered(), eng.epochBarriers()};
}

TEST(ParallelEngine, OracleVsParallelAtEveryWorkerCount)
{
    constexpr Tick limit = 2'000'000;
    const RunOutcome oracle = runSynthetic(4, 1, true, limit);
    EXPECT_GT(oracle.crossDelivered, 0u);
    EXPECT_GT(oracle.epochs, 0u);
    for (unsigned workers : {1u, 2u, 4u, 7u}) {
        const RunOutcome par = runSynthetic(4, workers, false, limit);
        EXPECT_EQ(par.digest, oracle.digest) << "workers=" << workers;
        EXPECT_EQ(par.fired, oracle.fired) << "workers=" << workers;
        EXPECT_EQ(par.crossSent, oracle.crossSent);
        EXPECT_EQ(par.crossDelivered, oracle.crossDelivered);
        EXPECT_EQ(par.epochs, oracle.epochs);
    }
}

TEST(ParallelEngine, SplitRunMatchesUnsplitRun)
{
    constexpr Tick limit = 1'500'000;
    const RunOutcome whole = runSynthetic(3, 2, false, limit, 1);
    // Segment boundaries land mid-epoch (limit/7 is no multiple of
    // the lookahead), exercising the partial-phase resume path.
    const RunOutcome split = runSynthetic(3, 2, false, limit, 7);
    EXPECT_EQ(split.digest, whole.digest);
    EXPECT_EQ(split.fired, whole.fired);
    EXPECT_EQ(split.crossDelivered, whole.crossDelivered);
    EXPECT_EQ(split.epochs, whole.epochs);
}

TEST(ParallelEngine, SingleIslandDegeneratesToSerialQueue)
{
    // The same self-rescheduling chain on a plain EventQueue and on a
    // single-island engine must fire identically; sendCross becomes
    // schedule.
    std::uint64_t plain_acc = 0;
    EventQueue plain;
    Rng prng(7);
    std::function<void()> plain_step;
    plain_step = [&] {
        plain_acc = mix(plain_acc, prng.next());
        plain.scheduleAfter(1 + prng.below(100), [&] { plain_step(); });
    };
    plain.schedule(5, [&] { plain_step(); });
    plain.run(100000);

    ParallelEngineConfig cfg;
    cfg.islands = 1;
    ParallelEngine eng(cfg);
    std::uint64_t eng_acc = 0;
    Rng erng(7);
    std::function<void()> eng_step;
    eng_step = [&] {
        eng_acc = mix(eng_acc, erng.next());
        eng.schedule(0, eng.islandQueue(0).curTick() + 1 + erng.below(100),
                     [&] { eng_step(); });
    };
    eng.schedule(0, 5, [&] { eng_step(); });
    eng.run(100000);

    EXPECT_EQ(eng_acc, plain_acc);
    EXPECT_EQ(eng.eventsFired(), plain.eventsFired());
    EXPECT_EQ(eng.curTick(), plain.curTick());
    EXPECT_EQ(eng.lookahead(), 0u);

    // sendCross on a single island is a plain schedule.
    bool fired = false;
    eng.sendCross(0, 0, eng.curTick() + 10, [&fired] { fired = true; });
    eng.run(eng.curTick() + 10);
    EXPECT_TRUE(fired);
    EXPECT_EQ(eng.crossSent(), 1u);
}

TEST(ParallelEngine, MailboxSpillAndMergeOrder)
{
    // A burst far beyond the SPSC ring capacity, sent from one event
    // (equal srcWhen), must be delivered completely and fire in
    // (when, send-order) order at the destination.
    constexpr unsigned kBurst = SpscMailbox::kRingSlots * 2 + 45;
    ParallelEngineConfig cfg;
    cfg.islands = 2;
    cfg.lookahead = 1000;
    ParallelEngine eng(cfg);

    std::vector<unsigned> arrivals;
    eng.schedule(0, 5, [&eng, &arrivals] {
        for (unsigned k = 0; k < kBurst; ++k) {
            eng.sendCross(0, 1, 1000 + (k % 7), [&arrivals, k] {
                arrivals.push_back(k);
            });
        }
    });
    eng.run(3000);

    ASSERT_EQ(arrivals.size(), kBurst);
    EXPECT_EQ(eng.crossSent(), kBurst);
    EXPECT_EQ(eng.crossDelivered(), kBurst);
    // Expected firing order: by delivery tick (k % 7), then by send
    // order — the merge delivers equal-srcWhen events in srcSeq order
    // and the queue fires same-tick events FIFO.
    std::vector<unsigned> expected;
    for (unsigned rem = 0; rem < 7; ++rem)
        for (unsigned k = 0; k < kBurst; ++k)
            if (k % 7 == rem)
                expected.push_back(k);
    EXPECT_EQ(arrivals, expected);
}

TEST(ParallelEngine, SpscMailboxRingWrapsAcrossDrains)
{
    SpscMailbox box;
    std::vector<odbsim::sim::CrossEvent> out;
    for (unsigned round = 0; round < 5; ++round) {
        for (unsigned k = 0; k < 100; ++k) {
            odbsim::sim::CrossEvent ev;
            ev.srcSeq = round * 100 + k;
            box.push(std::move(ev));
        }
        out.clear();
        box.drainTo(out);
        ASSERT_EQ(out.size(), 100u);
        for (unsigned k = 0; k < 100; ++k)
            EXPECT_EQ(out[k].srcSeq, round * 100 + k);
        EXPECT_TRUE(box.empty());
    }
}

TEST(ParallelEngineDeath, LookaheadViolationIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            ParallelEngineConfig cfg;
            cfg.islands = 2;
            cfg.lookahead = 1000;
            ParallelEngine eng(cfg);
            // At tick 0 the next boundary is 1000; 999 violates it.
            eng.sendCross(0, 1, 999, [] {});
        },
        ::testing::ExitedWithCode(1), "lookahead violation");
}

TEST(ParallelEngineDeath, MultiIslandWithoutLookaheadIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            ParallelEngineConfig cfg;
            cfg.islands = 4;
            cfg.lookahead = 0;
            ParallelEngine eng(cfg);
        },
        ::testing::ExitedWithCode(1), "requires a positive lookahead");
}

} // namespace
