/**
 * @file
 * Tests for sim::PooledFifo — the pooled intrusive FIFO behind the
 * hot-path queues (disk read/write, DBWR urgent/checkpoint, scheduler
 * ready, lock waiters): FIFO semantics, node recycling without heap
 * growth, mid-list erase, and the release of captured state on free.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sim/pooled_fifo.hh"

namespace
{

using odbsim::sim::PooledFifo;

TEST(PooledFifo, StartsEmpty)
{
    PooledFifo<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.allocations(), 0u);
    EXPECT_EQ(q.head(), PooledFifo<int>::npos);
}

TEST(PooledFifo, FifoOrder)
{
    PooledFifo<int> q;
    for (int i = 0; i < 5; ++i)
        q.pushBack(i);
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.popFront(), i);
    EXPECT_TRUE(q.empty());
}

TEST(PooledFifo, FrontPeeksWithoutPopping)
{
    PooledFifo<int> q;
    q.pushBack(7);
    q.pushBack(8);
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.popFront(), 7);
    EXPECT_EQ(q.front(), 8);
}

TEST(PooledFifo, RecyclesNodesWithoutGrowing)
{
    PooledFifo<int> q;
    // Reach a high-water mark of 8 simultaneous nodes.
    for (int i = 0; i < 8; ++i)
        q.pushBack(i);
    while (!q.empty())
        q.popFront();
    const std::uint64_t allocs = q.allocations();

    // Steady-state churn below the high-water mark must not grow the
    // pool, regardless of interleaving.
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 8; ++i)
            q.pushBack(round * 8 + i);
        for (int i = 0; i < 8; ++i)
            q.popFront();
    }
    EXPECT_EQ(q.allocations(), allocs);
}

TEST(PooledFifo, ReserveFrontLoadsTheAllocations)
{
    PooledFifo<int> q;
    q.reserve(16);
    const std::uint64_t allocs = q.allocations();
    EXPECT_GT(allocs, 0u);
    for (int i = 0; i < 16; ++i)
        q.pushBack(i);
    EXPECT_EQ(q.allocations(), allocs);
}

TEST(PooledFifo, IntrusiveTraversalSeesInsertionOrder)
{
    PooledFifo<int> q;
    for (int i = 10; i < 14; ++i)
        q.pushBack(i);
    int expect = 10;
    for (auto n = q.head(); n != PooledFifo<int>::npos; n = q.next(n))
        EXPECT_EQ(q.at(n), expect++);
    EXPECT_EQ(expect, 14);
}

TEST(PooledFifo, EraseMiddleKeepsOrder)
{
    PooledFifo<int> q;
    for (int i = 0; i < 5; ++i)
        q.pushBack(i);
    // Find node holding 2 and its predecessor.
    auto prev = PooledFifo<int>::npos;
    auto n = q.head();
    while (q.at(n) != 2) {
        prev = n;
        n = q.next(n);
    }
    EXPECT_EQ(q.erase(prev, n), 2);
    EXPECT_EQ(q.size(), 4u);
    const int expect[] = {0, 1, 3, 4};
    int k = 0;
    for (auto it = q.head(); it != PooledFifo<int>::npos;
         it = q.next(it))
        EXPECT_EQ(q.at(it), expect[k++]);
}

TEST(PooledFifo, EraseHeadAndTail)
{
    PooledFifo<int> q;
    for (int i = 0; i < 3; ++i)
        q.pushBack(i);
    // Head (prev == npos).
    EXPECT_EQ(q.erase(PooledFifo<int>::npos, q.head()), 0);
    // Tail.
    auto prev = q.head();
    auto tail = q.next(prev);
    EXPECT_EQ(q.erase(prev, tail), 2);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.popFront(), 1);
    // Reusable after draining through erases.
    q.pushBack(9);
    EXPECT_EQ(q.front(), 9);
}

TEST(PooledFifo, FreeingReleasesCapturedState)
{
    // Queue of callbacks holding shared state: recycling a node must
    // drop the captured copy (freeNode resets the value), or pooled
    // queues would pin resources until the node is reused.
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    PooledFifo<std::function<void()>> q;
    q.pushBack([token] { (void)token; });
    token.reset();
    EXPECT_FALSE(watch.expired()); // Held by the queued callback.
    q.popFront()();
    EXPECT_TRUE(watch.expired()) << "recycled node pinned its capture";
}

} // namespace
