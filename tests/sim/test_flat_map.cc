/**
 * @file
 * Tests for the flat open-addressing table: basic map semantics, the
 * index-based access used by the hot paths, O(1) generation-stamped
 * clear (including 16-bit wrap), reserve/allocation accounting, and a
 * differential churn test against std::unordered_map covering the
 * insert/erase/clear mixes that exercise backward-shift deletion.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "sim/flat_map.hh"
#include "sim/rng.hh"

namespace
{

using namespace odbsim;
using sim::FlatMap;

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(7), nullptr);

    m.findOrInsert(7) = 42;
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 42u);
    EXPECT_EQ(m.size(), 1u);

    EXPECT_TRUE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.erase(7));
}

TEST(FlatMap, FindOrInsertValueInitializes)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    m.findOrInsert(1) = 99;
    m.erase(1);
    // A re-inserted key must not see the stale value.
    EXPECT_EQ(m.findOrInsert(1), 0u);
}

TEST(FlatMap, FindOrInsertReportsInsertion)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    bool inserted = false;
    m.findOrInsert(5, inserted) = 10;
    EXPECT_TRUE(inserted);
    EXPECT_EQ(m.findOrInsert(5, inserted), 10u);
    EXPECT_FALSE(inserted);
}

TEST(FlatMap, IndexAccessors)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    m.findOrInsert(11) = 1;
    const std::size_t i = m.findIndex(11);
    ASSERT_NE(i, (FlatMap<std::uint64_t, std::uint32_t>::npos));
    EXPECT_EQ(m.keyAt(i), 11u);
    EXPECT_EQ(m.valueAt(i), 1u);
    EXPECT_EQ(m.findIndex(12),
              (FlatMap<std::uint64_t, std::uint32_t>::npos));
    m.eraseAt(i);
    EXPECT_EQ(m.find(11), nullptr);
}

TEST(FlatMap, ClearIsReusable)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.findOrInsert(k) = static_cast<std::uint32_t>(k);
    const std::uint64_t allocs = m.allocations();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(m.find(k), nullptr);
    // Clear must not touch the heap, and the table stays usable.
    EXPECT_EQ(m.allocations(), allocs);
    m.findOrInsert(3) = 33;
    EXPECT_EQ(*m.find(3), 33u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GenerationStampWrapDoesNotResurrect)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    // Push the 16-bit generation counter through a full wrap; an entry
    // inserted before a clear must never reappear after it.
    for (int round = 0; round < 70'000; ++round) {
        m.findOrInsert(static_cast<std::uint64_t>(round)) = 1;
        m.clear();
        if ((round & 8191) == 0) {
            EXPECT_EQ(m.size(), 0u);
            EXPECT_EQ(m.find(static_cast<std::uint64_t>(round)),
                      nullptr);
        }
    }
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(0), nullptr);
    EXPECT_EQ(m.find(69'999), nullptr);
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    m.reserve(100'000);
    const std::uint64_t allocs = m.allocations();
    for (std::uint64_t k = 0; k < 100'000; ++k)
        m.findOrInsert(k) = static_cast<std::uint32_t>(k);
    EXPECT_EQ(m.size(), 100'000u);
    EXPECT_EQ(m.allocations(), allocs);
}

/**
 * reserve() must size the table exactly as the insert-time 7/8 load
 * check demands: reserving capacity×7/8 entries lands on the exact
 * boundary (no rehash on the last insert, no over-doubling), and one
 * entry past the boundary must round up to the next power of two.
 * Regression for a reserve() that applied the load-factor check
 * before rounding up to a power of two, under-sizing the table and
 * paying one full rehash mid-warm-up.
 */
TEST(FlatMap, ReserveBoundaryIsExact)
{
    // 7/8 of 2048 = 1792: the largest population a 2048-slot table
    // admits. Reserving it must yield exactly 2048 slots...
    {
        FlatMap<std::uint64_t, std::uint32_t> m;
        m.reserve(1792);
        EXPECT_EQ(m.capacity(), 2048u);
        const std::uint64_t allocs = m.allocations();
        for (std::uint64_t k = 0; k < 1792; ++k)
            m.findOrInsert(k) = static_cast<std::uint32_t>(k);
        // ...and filling to the boundary must not rehash.
        EXPECT_EQ(m.size(), 1792u);
        EXPECT_EQ(m.capacity(), 2048u);
        EXPECT_EQ(m.allocations(), allocs);
    }
    // One entry past the boundary needs the next power of two.
    {
        FlatMap<std::uint64_t, std::uint32_t> m;
        m.reserve(1793);
        EXPECT_EQ(m.capacity(), 4096u);
        const std::uint64_t allocs = m.allocations();
        for (std::uint64_t k = 0; k < 1793; ++k)
            m.findOrInsert(k) = static_cast<std::uint32_t>(k);
        EXPECT_EQ(m.allocations(), allocs);
    }
    // reserve() never shrinks and reserve(0) keeps the minimum.
    {
        FlatMap<std::uint64_t, std::uint32_t> m;
        EXPECT_EQ(m.capacity(), 1024u);
        m.reserve(0);
        EXPECT_EQ(m.capacity(), 1024u);
        m.reserve(4000);
        EXPECT_EQ(m.capacity(), 8192u);
        m.reserve(100);
        EXPECT_EQ(m.capacity(), 8192u);
    }
}

TEST(FlatMap, GrowthAdvancesAllocationCounter)
{
    FlatMap<std::uint64_t, std::uint32_t> m; // 1024 slots minimum.
    const std::uint64_t allocs = m.allocations();
    for (std::uint64_t k = 0; k < 2000; ++k)
        m.findOrInsert(k) = 0;
    EXPECT_GT(m.allocations(), allocs);
    for (std::uint64_t k = 0; k < 2000; ++k)
        EXPECT_NE(m.find(k), nullptr) << k;
}

/**
 * Differential churn against std::unordered_map: one deterministic
 * stream of inserts, updates, erases and clears over a bounded key
 * domain (forcing collisions, probe runs and backward-shift
 * deletions), checking lookups continuously and full contents at the
 * end.
 */
TEST(FlatMap, DifferentialChurnAgainstUnorderedMap)
{
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(2026);
    constexpr std::uint64_t domain = 4096; // ~4x the minimum capacity.

    for (int op = 0; op < 400'000; ++op) {
        const std::uint64_t k = rng.below(domain);
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2:
          case 3: { // Insert or update.
            const std::uint64_t v = rng.below(1u << 30);
            flat.findOrInsert(k) = v;
            ref[k] = v;
            break;
          }
          case 4:
          case 5:
          case 6: { // Erase (also via eraseAt to cover both paths).
            if (op & 1) {
                EXPECT_EQ(flat.erase(k), ref.erase(k) > 0);
            } else {
                const std::size_t i = flat.findIndex(k);
                const bool present = ref.erase(k) > 0;
                EXPECT_EQ(i != decltype(flat)::npos, present);
                if (i != decltype(flat)::npos)
                    flat.eraseAt(i);
            }
            break;
          }
          case 7:
          case 8: { // Lookup.
            const std::uint64_t *v = flat.find(k);
            const auto it = ref.find(k);
            ASSERT_EQ(v != nullptr, it != ref.end());
            if (v) {
                EXPECT_EQ(*v, it->second);
            }
            break;
          }
          default: // Occasional full clear.
            if (rng.below(1000) == 0) {
                flat.clear();
                ref.clear();
            }
            break;
        }
        EXPECT_EQ(flat.size(), ref.size());
    }

    // Final full-content sweep.
    for (std::uint64_t k = 0; k < domain; ++k) {
        const std::uint64_t *v = flat.find(k);
        const auto it = ref.find(k);
        ASSERT_EQ(v != nullptr, it != ref.end()) << k;
        if (v) {
            EXPECT_EQ(*v, it->second) << k;
        }
    }
}

/** Erase-heavy adjacent keys: the worst case for backward-shift. */
TEST(FlatMap, DenseEraseReinsert)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    constexpr std::uint64_t n = 800; // Near the 7/8 load bound of 1024.
    for (std::uint64_t k = 0; k < n; ++k)
        m.findOrInsert(k) = static_cast<std::uint32_t>(k * 3);
    // Erase every other key, then verify the survivors are intact
    // (backward-shift must close the probe runs without losing keys).
    for (std::uint64_t k = 0; k < n; k += 2)
        EXPECT_TRUE(m.erase(k));
    for (std::uint64_t k = 0; k < n; ++k) {
        if (k & 1) {
            ASSERT_NE(m.find(k), nullptr) << k;
            EXPECT_EQ(*m.find(k), k * 3);
        } else {
            EXPECT_EQ(m.find(k), nullptr) << k;
        }
    }
    // Reinsert into the shifted table.
    for (std::uint64_t k = 0; k < n; k += 2)
        m.findOrInsert(k) = static_cast<std::uint32_t>(k * 3);
    for (std::uint64_t k = 0; k < n; ++k)
        EXPECT_EQ(*m.find(k), k * 3) << k;
    EXPECT_EQ(m.size(), n);
}

} // namespace
