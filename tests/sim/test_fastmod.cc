/**
 * @file
 * Tests for the exact 128-bit-reciprocal fastmod: bit-identical to the
 * hardware `%` for every divisor/operand pairing we throw at it,
 * including the buffer cache's metaAddr fold (golden-ratio-hashed
 * block ids onto a frame count) across the realistic frame-count
 * range and the studied configuration's 358,400 frames.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "sim/fastmod.hh"
#include "sim/rng.hh"

namespace
{

using namespace odbsim;
using sim::FastMod64;

const std::uint64_t kInteresting[] = {
    0,
    1,
    2,
    3,
    7,
    63,
    64,
    65,
    1023,
    1024,
    358'399,
    358'400,
    358'401,
    (1ull << 32) - 1,
    1ull << 32,
    (1ull << 32) + 1,
    0x9e3779b97f4a7c15ULL,
    (1ull << 63) - 1,
    1ull << 63,
    std::numeric_limits<std::uint64_t>::max() - 1,
    std::numeric_limits<std::uint64_t>::max(),
};

TEST(FastMod64, MatchesHardwareModOnEdgeDivisors)
{
    for (const std::uint64_t d : kInteresting) {
        if (d == 0)
            continue;
        const FastMod64 fm(d);
        EXPECT_EQ(fm.divisor(), d);
        for (const std::uint64_t n : kInteresting)
            EXPECT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
}

TEST(FastMod64, MatchesHardwareModOnRandomPairs)
{
    Rng rng(0xfa57);
    for (int i = 0; i < 200'000; ++i) {
        // Mix full-width and small operands/divisors.
        std::uint64_t n = rng.next();
        std::uint64_t d = rng.next();
        if (i % 3 == 0)
            d = 1 + rng.below(1u << 20);
        if (i % 5 == 0)
            n = rng.below(1u << 16);
        if (d == 0)
            d = 1;
        const FastMod64 fm(d);
        ASSERT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
}

/**
 * The exact fold BufferCache::metaAddr performs: golden-ratio-hashed
 * block ids (which occupy the full 64-bit range) reduced by the frame
 * count, swept over realistic cache sizes including the studied
 * 2.8 GB configuration's 358,400 frames.
 */
TEST(FastMod64, MetaAddrFoldAcrossFrameCounts)
{
    const std::uint64_t frameCounts[] = {8,    9,     100,     1024,
                                         4096, 16384, 100'000, 358'400};
    Rng rng(0x0b10c);
    for (const std::uint64_t frames : frameCounts) {
        const FastMod64 fm(frames);
        for (std::uint64_t b = 0; b < 4096; ++b) {
            const std::uint64_t h = b * 0x9e3779b97f4a7c15ULL;
            ASSERT_EQ(fm.mod(h), h % frames)
                << "b=" << b << " frames=" << frames;
        }
        for (int i = 0; i < 4096; ++i) {
            const std::uint64_t h = rng.next() * 0x9e3779b97f4a7c15ULL;
            ASSERT_EQ(fm.mod(h), h % frames) << "frames=" << frames;
        }
    }
}

TEST(FastMod64, ResetChangesDivisor)
{
    FastMod64 fm(10);
    EXPECT_EQ(fm.mod(123), 3u);
    fm.reset(7);
    EXPECT_EQ(fm.divisor(), 7u);
    EXPECT_EQ(fm.mod(123), 123u % 7u);
}

TEST(FastMod64, DefaultIsDivideByOne)
{
    const FastMod64 fm;
    EXPECT_EQ(fm.divisor(), 1u);
    EXPECT_EQ(fm.mod(0xdeadbeefULL), 0u);
    EXPECT_EQ(fm.mod(std::numeric_limits<std::uint64_t>::max()), 0u);
}

} // namespace
