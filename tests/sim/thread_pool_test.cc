/**
 * @file
 * Tests for the fixed-size worker pool: submit/futures, parallelFor
 * coverage and blocking semantics, exception propagation, and reuse
 * of one pool across many dispatch rounds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hh"

namespace
{

using namespace odbsim;

TEST(ThreadPool, SizeDefaultsToAtLeastOne)
{
    ThreadPool pool(0); // 0 = hardware concurrency, clamped to >= 1
    EXPECT_GE(pool.size(), 1u);
    ThreadPool fixed(3);
    EXPECT_EQ(fixed.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 200;
    std::vector<int> hits(n, 0); // distinct slots: no data race
    pool.parallelFor(n, [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForBlocksUntilAllTasksComplete)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    pool.parallelFor(64, [&](std::size_t) {
        done.fetch_add(1, std::memory_order_relaxed);
    });
    // parallelFor returned, so every task must have finished.
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexedException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(32, [&](std::size_t i) {
            if (i == 5 || i == 20)
                throw std::invalid_argument(std::to_string(i));
            completed.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected an exception";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ(e.what(), "5"); // lowest failing index wins
    }
    // No partial cancellation: every non-throwing task still ran.
    EXPECT_EQ(completed.load(), 30);
}

TEST(ThreadPool, PoolIsReusableAcrossRounds)
{
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    for (int round = 0; round < 5; ++round)
        pool.parallelFor(10, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
        });
    EXPECT_EQ(sum.load(), 5 * 45);
    // And submit() still works after parallelFor rounds.
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1); // single worker: tasks queue up
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    } // destructor joins after the queue drains
    EXPECT_EQ(ran.load(), 20);
}

} // namespace
