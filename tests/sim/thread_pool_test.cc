/**
 * @file
 * Tests for the work-stealing worker pool: submit/futures, parallelFor
 * coverage and blocking semantics, exception propagation (including
 * under stealing), nested submission from worker tasks, priorities,
 * steal-order independence, shutdown semantics, and a many-round churn
 * case the TSan CI job uses to race-check the deque/injection paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hh"

namespace
{

using namespace odbsim;

/** Pure per-index value for the determinism checks. */
std::uint64_t
mixIndex(std::size_t i)
{
    std::uint64_t x = static_cast<std::uint64_t>(i) +
                      0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return x;
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne)
{
    ThreadPool pool(0); // 0 = hardware concurrency, clamped to >= 1
    EXPECT_GE(pool.size(), 1u);
    ThreadPool fixed(3);
    EXPECT_EQ(fixed.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 200;
    std::vector<int> hits(n, 0); // distinct slots: no data race
    pool.parallelFor(n, [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForBlocksUntilAllTasksComplete)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    pool.parallelFor(64, [&](std::size_t) {
        done.fetch_add(1, std::memory_order_relaxed);
    });
    // parallelFor returned, so every task must have finished.
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexedException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(32, [&](std::size_t i) {
            if (i == 5 || i == 20)
                throw std::invalid_argument(std::to_string(i));
            completed.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected an exception";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ(e.what(), "5"); // lowest failing index wins
    }
    // No partial cancellation: every non-throwing task still ran.
    EXPECT_EQ(completed.load(), 30);
}

TEST(ThreadPool, PoolIsReusableAcrossRounds)
{
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    for (int round = 0; round < 5; ++round)
        pool.parallelFor(10, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
        });
    EXPECT_EQ(sum.load(), 5 * 45);
    // And submit() still works after parallelFor rounds.
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1); // single worker: tasks queue up
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    } // destructor joins after the queue drains
    EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, CurrentIsSetOnWorkersOnly)
{
    ThreadPool pool(2);
    EXPECT_EQ(ThreadPool::current(), nullptr);
    auto f = pool.submit([&] { return ThreadPool::current() == &pool; });
    EXPECT_TRUE(f.get());
    EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ThreadPool, NestedParallelForFromWorkerTask)
{
    ThreadPool pool(2);
    constexpr std::size_t n = 128;
    std::vector<std::uint64_t> out(n, 0);
    auto f = pool.submit([&] {
        // The calling worker claims indices inline and helps, so this
        // completes even if every peer is busy.
        pool.parallelFor(n, [&](std::size_t i) { out[i] = mixIndex(i); });
        return 7;
    });
    EXPECT_EQ(f.get(), 7);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], mixIndex(i)) << "index " << i;
}

TEST(ThreadPool, NestedParallelForOnSingleWorkerPool)
{
    // One worker, zero idle peers: the nested loop must run entirely
    // inline on the submitting worker (the deadlock case for a
    // blocking-wait pool).
    ThreadPool pool(1);
    std::atomic<int> hits{0};
    pool.submit([&] {
            pool.parallelFor(32, [&](std::size_t) {
                hits.fetch_add(1, std::memory_order_relaxed);
            });
        })
        .get();
    EXPECT_EQ(hits.load(), 32);
}

TEST(ThreadPool, DeeplyNestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> leaf{0};
    pool.submit([&] {
            pool.parallelFor(4, [&](std::size_t) {
                pool.parallelFor(4, [&](std::size_t) {
                    leaf.fetch_add(1, std::memory_order_relaxed);
                });
            });
        })
        .get();
    EXPECT_EQ(leaf.load(), 16);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptionUnderStealing)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    auto f = pool.submit([&]() -> int {
        pool.parallelFor(128, [&](std::size_t i) {
            if (i == 17)
                throw std::invalid_argument("17");
            completed.fetch_add(1, std::memory_order_relaxed);
        });
        return 0;
    });
    EXPECT_THROW(f.get(), std::invalid_argument);
    EXPECT_EQ(completed.load(), 127); // no partial cancellation
}

TEST(ThreadPool, CollectByIndexIsIdenticalAcrossPoolSizes)
{
    constexpr std::size_t n = 512;
    std::vector<std::uint64_t> ref(n);
    for (std::size_t i = 0; i < n; ++i)
        ref[i] = mixIndex(i);
    // Different worker counts steal in different orders; collecting by
    // index must erase that (the pool's determinism contract).
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(threads);
        std::vector<std::uint64_t> got(n, 0);
        pool.parallelFor(n, [&](std::size_t i) { got[i] = mixIndex(i); });
        EXPECT_EQ(got, ref) << "threads=" << threads;
    }
}

TEST(ThreadPool, HighPriorityOvertakesNormalInjection)
{
    ThreadPool pool(1);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    // Park the single worker so both submissions wait in the injection
    // queues together; the High task must be dispatched first.
    auto gate = pool.submit([&] {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
    });
    std::mutex om;
    std::vector<int> order;
    auto normal = pool.submit(TaskPriority::Normal, [&] {
        std::lock_guard<std::mutex> g(om);
        order.push_back(0);
    });
    auto high = pool.submit(TaskPriority::High, [&] {
        std::lock_guard<std::mutex> g(om);
        order.push_back(1);
    });
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    gate.get();
    normal.get();
    high.get();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 0);
}

TEST(ThreadPool, PinnedPoolRunsToCompletion)
{
    // Affinity is best-effort (and a no-op where unsupported); it must
    // never change what executes.
    ThreadPoolConfig cfg;
    cfg.threads = 2;
    cfg.pinThreads = true;
    ThreadPool pool(cfg);
    std::vector<int> hits(64, 0);
    pool.parallelFor(64, [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
    EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, ChurnThousandsOfRoundsStaysCoherent)
{
    // The CI TSan job runs this via its ThreadPool filter: 3000 rounds
    // of mixed submit/parallelFor churn over one pool race-checks the
    // deque push/pop/steal and injection handoff paths.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 3000; ++round) {
        if ((round & 63) == 0)
            EXPECT_EQ(pool.submit([round] { return round; }).get(),
                      round);
        pool.parallelFor(8, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 3000ull * 36);
}

TEST(HostParallelFor, JobCountNeverChangesResults)
{
    constexpr std::size_t n = 200;
    std::vector<std::uint64_t> ref(n);
    for (std::size_t i = 0; i < n; ++i)
        ref[i] = mixIndex(i);
    for (unsigned jobs : {0u, 1u, 2u, 5u}) {
        std::vector<std::uint64_t> got(n, 0);
        hostParallelFor(jobs, n,
                        [&](std::size_t i) { got[i] = mixIndex(i); });
        EXPECT_EQ(got, ref) << "jobs=" << jobs;
    }
}

TEST(HostParallelFor, NestsOnTheCurrentPoolFromAWorker)
{
    ThreadPool pool(2);
    constexpr std::size_t n = 64;
    std::vector<std::uint64_t> got(n, 0);
    pool.submit([&] {
            // On a worker, hostParallelFor must become nested tasks on
            // that pool rather than spawning a transient one.
            hostParallelFor(4, n,
                            [&](std::size_t i) { got[i] = mixIndex(i); });
        })
        .get();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(got[i], mixIndex(i)) << "index " << i;
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            ThreadPool pool(1);
            pool.shutdown();
            pool.submit([] {});
        },
        ::testing::ExitedWithCode(1), "submit after shutdown");
}

TEST(ThreadPool, ShutdownIsIdempotentAndStopsWorkers)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.parallelFor(16, [&](std::size_t) { ran.fetch_add(1); });
    pool.shutdown();
    pool.shutdown(); // second call is a no-op
    EXPECT_EQ(ran.load(), 16);
}

} // namespace
