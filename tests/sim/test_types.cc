/**
 * @file
 * Tests for tick/cycle unit conversions.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace
{

using namespace odbsim;

TEST(Types, UnitRatios)
{
    EXPECT_EQ(tickPerNs, 1000u);
    EXPECT_EQ(tickPerUs, 1000u * 1000u);
    EXPECT_EQ(tickPerSec, 1000ull * 1000 * 1000 * 1000);
}

TEST(Types, SecondsRoundTrip)
{
    EXPECT_EQ(ticksFromSeconds(1.0), tickPerSec);
    EXPECT_DOUBLE_EQ(secondsFromTicks(tickPerSec), 1.0);
    EXPECT_EQ(ticksFromMs(2.5), 2500u * tickPerUs);
    EXPECT_EQ(ticksFromUs(1.5), 1500u * tickPerNs);
}

TEST(ClockDomain, XeonCycleIsExactly625Ps)
{
    const ClockDomain clk(1.6e9);
    EXPECT_DOUBLE_EQ(clk.ticksPerCycle(), 625.0);
    EXPECT_EQ(clk.cyclesToTicks(1.0), 625u);
    EXPECT_EQ(clk.cyclesToTicks(1000.0), 625000u);
}

TEST(ClockDomain, RoundTripCycles)
{
    const ClockDomain clk(1.6e9);
    EXPECT_DOUBLE_EQ(clk.ticksToCycles(clk.cyclesToTicks(12345.0)),
                     12345.0);
}

TEST(ClockDomain, FractionalCyclesRound)
{
    const ClockDomain clk(1.5e9); // 666.67 ps per cycle.
    const Tick t3 = clk.cyclesToTicks(3.0);
    EXPECT_EQ(t3, 2000u);
    EXPECT_NEAR(clk.ticksToCycles(t3), 3.0, 1e-9);
}

TEST(ClockDomain, ReportsFrequency)
{
    const ClockDomain clk(2.0e9);
    EXPECT_DOUBLE_EQ(clk.frequency(), 2.0e9);
}

TEST(Types, StorageSizes)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024ull * 1024 * 1024);
}

} // namespace
