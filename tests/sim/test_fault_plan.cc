/**
 * @file
 * Tests for sim::FaultPlan: construction-time knob validation (bad
 * probabilities and latencies fail fast), the inertness of the default
 * plan, deterministic controller backoff, and the measurement-boundary
 * counter-reset semantics.
 */

#include <gtest/gtest.h>

#include <limits>

#include "sim/fault.hh"

namespace
{

using namespace odbsim;
using sim::FaultConfig;
using sim::FaultPlan;

TEST(FaultPlan, DefaultPlanIsInert)
{
    const FaultPlan p;
    EXPECT_FALSE(p.diskFaultsEnabled());
    EXPECT_FALSE(p.driveEventsEnabled());
    EXPECT_FALSE(p.lockTimeoutEnabled());
    EXPECT_FALSE(p.txnAbortsEnabled());
    EXPECT_FALSE(p.crashEnabled());
    EXPECT_FALSE(p.anyEnabled());
    EXPECT_EQ(p.lockWaitTimeoutTicks(), 0u);
}

TEST(FaultPlan, ValidatedEmptyConfigIsStillInert)
{
    // Passing an all-default config through the validating constructor
    // must behave exactly like the default plan.
    const FaultPlan p(FaultConfig{}, 42);
    EXPECT_FALSE(p.anyEnabled());
}

TEST(FaultPlan, EnabledFlagsFollowTheKnobs)
{
    FaultConfig fc;
    fc.diskTransientProb = 0.1;
    fc.lockWaitTimeoutMs = 25.0;
    FaultPlan p(fc, 1);
    EXPECT_TRUE(p.diskFaultsEnabled());
    EXPECT_TRUE(p.lockTimeoutEnabled());
    EXPECT_FALSE(p.txnAbortsEnabled());
    EXPECT_FALSE(p.crashEnabled());
    EXPECT_TRUE(p.anyEnabled());
    EXPECT_EQ(p.lockWaitTimeoutTicks(), ticksFromMs(25.0));
}

TEST(FaultPlanDeathTest, RejectsOutOfRangeProbability)
{
    FaultConfig fc;
    fc.diskTransientProb = 1.5;
    EXPECT_EXIT({ FaultPlan p(fc, 1); },
                ::testing::ExitedWithCode(1), "diskTransientProb");
}

TEST(FaultPlanDeathTest, RejectsNanProbability)
{
    FaultConfig fc;
    fc.txnAbortProb = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EXIT({ FaultPlan p(fc, 1); },
                ::testing::ExitedWithCode(1), "txnAbortProb");
}

TEST(FaultPlanDeathTest, RejectsNegativeLatency)
{
    FaultConfig fc;
    fc.diskRetryBackoffMs = -0.5;
    EXPECT_EXIT({ FaultPlan p(fc, 1); },
                ::testing::ExitedWithCode(1), "diskRetryBackoffMs");
}

TEST(FaultPlanDeathTest, RejectsNegativeTimeout)
{
    FaultConfig fc;
    fc.lockWaitTimeoutMs = -1.0;
    EXPECT_EXIT({ FaultPlan p(fc, 1); },
                ::testing::ExitedWithCode(1), "lockWaitTimeoutMs");
}

TEST(FaultPlanDeathTest, RejectsZeroRecoveryChunk)
{
    FaultConfig fc;
    fc.recoveryReadChunkKb = 0.0;
    EXPECT_EXIT({ FaultPlan p(fc, 1); },
                ::testing::ExitedWithCode(1), "recoveryReadChunkKb");
}

TEST(FaultPlanDeathTest, RejectsDegradeFactorBelowOne)
{
    FaultConfig fc;
    sim::DriveFaultEvent ev;
    ev.degradeFactor = 0.5;
    fc.driveEvents.push_back(ev);
    EXPECT_EXIT({ FaultPlan p(fc, 1); },
                ::testing::ExitedWithCode(1), "degradeFactor");
}

TEST(FaultPlanDeathTest, RejectsNegativeDriveEventTime)
{
    FaultConfig fc;
    sim::DriveFaultEvent ev;
    ev.atMs = -2.0;
    fc.driveEvents.push_back(ev);
    EXPECT_EXIT({ FaultPlan p(fc, 1); },
                ::testing::ExitedWithCode(1), "atMs");
}

TEST(FaultPlan, BackoffDoublesAndCaps)
{
    FaultConfig fc;
    fc.diskTransientProb = 0.5;
    fc.diskRetryBackoffMs = 0.3;
    fc.diskRetryBackoffMaxMs = 1.0;
    const FaultPlan p(fc, 9);
    EXPECT_EQ(p.diskBackoffTicks(1), ticksFromMs(0.3));
    EXPECT_EQ(p.diskBackoffTicks(2), ticksFromMs(0.6));
    EXPECT_EQ(p.diskBackoffTicks(3), ticksFromMs(1.0)); // Capped.
    EXPECT_EQ(p.diskBackoffTicks(7), ticksFromMs(1.0));
}

TEST(FaultPlan, BackoffIsDeterministic)
{
    FaultConfig fc;
    fc.diskTransientProb = 0.5;
    const FaultPlan a(fc, 7);
    const FaultPlan b(fc, 8); // Backoff is seed-independent.
    for (unsigned attempt = 1; attempt <= 6; ++attempt)
        EXPECT_EQ(a.diskBackoffTicks(attempt),
                  b.diskBackoffTicks(attempt));
}

TEST(FaultPlan, DrawsAreSeedDeterministic)
{
    FaultConfig fc;
    fc.txnAbortProb = 0.3;
    fc.clientRetryBackoffMs = 2.0;
    FaultPlan a(fc, 123);
    FaultPlan b(fc, 123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.drawTxnAbort(), b.drawTxnAbort());
        EXPECT_EQ(a.drawClientBackoff(), b.drawClientBackoff());
        EXPECT_EQ(a.drawAbortPoint(57), b.drawAbortPoint(57));
    }
}

TEST(FaultPlan, ClientBackoffIsJitteredAroundTheMean)
{
    FaultConfig fc;
    fc.txnAbortProb = 0.1;
    fc.clientRetryBackoffMs = 2.0;
    FaultPlan p(fc, 5);
    for (int i = 0; i < 200; ++i) {
        const Tick t = p.drawClientBackoff();
        EXPECT_GE(t, ticksFromMs(1.0));
        EXPECT_LE(t, ticksFromMs(3.0));
    }
}

TEST(FaultPlan, ResetCountersPreservesCrashMarks)
{
    FaultConfig fc;
    fc.crashAtMs = 10.0;
    FaultPlan p(fc, 3);
    p.stats().txnAborts = 5;
    p.stats().lockTimeouts = 2;
    p.stats().diskTransientErrors = 7;
    p.stats().crashes = 1;
    p.stats().crashTick = 1234;
    p.stats().recoveryEndTick = 5678;
    p.stats().redoReplayedBytes = 1 << 20;

    p.resetCounters();

    EXPECT_EQ(p.stats().txnAborts, 0u);
    EXPECT_EQ(p.stats().lockTimeouts, 0u);
    EXPECT_EQ(p.stats().diskTransientErrors, 0u);
    // MTTR spans measurement boundaries: the marks survive.
    EXPECT_EQ(p.stats().crashes, 1u);
    EXPECT_EQ(p.stats().crashTick, 1234u);
    EXPECT_EQ(p.stats().recoveryEndTick, 5678u);
    EXPECT_EQ(p.stats().redoReplayedBytes, 1u << 20);
}

} // namespace
