/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, same-tick FIFO,
 * cancellation, run limits.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace
{

using namespace odbsim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, AdvancesCurTickToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.curTick(); });
    eq.runAll();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.curTick(); });
    });
    eq.runAll();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, RunStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.run(20);
    EXPECT_EQ(fired, 2); // Events at the limit fire.
    EXPECT_EQ(eq.curTick(), 20u);
    eq.runAll();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunToLimitAdvancesTimeEvenWithoutEvents)
{
    EventQueue eq;
    eq.run(1000);
    EXPECT_EQ(eq.curTick(), 1000u);
}

TEST(EventQueue, CancelledEventDoesNotFire)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsHarmless)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&] { ++fired; });
    eq.runAll();
    EXPECT_FALSE(h.pending());
    h.cancel();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsScheduledDuringEventsFire)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(1, recurse);
    };
    eq.schedule(0, recurse);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.curTick(), 4u);
}

TEST(EventQueue, CountsFiredEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.eventsFired(), 10u);
}

TEST(EventQueue, DefaultHandleIsNotPending)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel(); // Must not crash.
}

/** Property: N randomly-ordered events fire in nondecreasing time. */
class EventQueueOrderProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueueOrderProperty, MonotoneFiringTimes)
{
    EventQueue eq;
    std::vector<Tick> fired_at;
    std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 2654435761u;
    for (int i = 0; i < 200; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const Tick when = (x >> 33) % 1000;
        eq.schedule(when, [&fired_at, &eq] {
            fired_at.push_back(eq.curTick());
        });
    }
    eq.runAll();
    ASSERT_EQ(fired_at.size(), 200u);
    for (std::size_t i = 1; i < fired_at.size(); ++i)
        EXPECT_LE(fired_at[i - 1], fired_at[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

} // namespace
