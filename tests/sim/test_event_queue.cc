/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, same-tick FIFO,
 * cancellation, run limits.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace
{

using namespace odbsim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, AdvancesCurTickToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.curTick(); });
    eq.runAll();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.curTick(); });
    });
    eq.runAll();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, RunStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.run(20);
    EXPECT_EQ(fired, 2); // Events at the limit fire.
    EXPECT_EQ(eq.curTick(), 20u);
    eq.runAll();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunToLimitAdvancesTimeEvenWithoutEvents)
{
    EventQueue eq;
    eq.run(1000);
    EXPECT_EQ(eq.curTick(), 1000u);
}

TEST(EventQueue, CancelledEventDoesNotFire)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsHarmless)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&] { ++fired; });
    eq.runAll();
    EXPECT_FALSE(h.pending());
    h.cancel();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsScheduledDuringEventsFire)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(1, recurse);
    };
    eq.schedule(0, recurse);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.curTick(), 4u);
}

TEST(EventQueue, CountsFiredEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.eventsFired(), 10u);
}

TEST(EventQueue, DefaultHandleIsNotPending)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel(); // Must not crash.
}

TEST(EventQueue, HandleCopiesAgreeOnPendingAndCancel)
{
    EventQueue eq;
    int fired = 0;
    EventHandle a = eq.schedule(10, [&] { ++fired; });
    EventHandle b = a; // copies refer to the same event
    EXPECT_TRUE(a.pending());
    EXPECT_TRUE(b.pending());
    b.cancel();
    EXPECT_FALSE(a.pending());
    EXPECT_FALSE(b.pending());
    a.cancel(); // double cancel through the other copy: no-op
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, SizeExcludesCancelledEvents)
{
    EventQueue eq;
    EventHandle a = eq.schedule(10, [] {});
    EventHandle b = eq.schedule(20, [] {});
    eq.schedule(30, [] {});
    EXPECT_EQ(eq.size(), 3u);
    a.cancel();
    EXPECT_EQ(eq.size(), 2u);
    b.cancel();
    b.cancel(); // idempotent: must not decrement twice
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_FALSE(eq.empty());
    eq.runAll();
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot)
{
    EventQueue eq;
    int first = 0, second = 0;
    EventHandle stale = eq.schedule(10, [&] { ++first; });
    eq.runAll();
    EXPECT_FALSE(stale.pending());
    // The fired event's slot is recycled for the next schedule; the
    // stale handle's generation no longer matches, so cancelling it
    // must not kill the new occupant.
    EventHandle fresh = eq.schedule(20, [&] { ++second; });
    stale.cancel();
    EXPECT_TRUE(fresh.pending());
    eq.runAll();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
}

TEST(EventQueue, CallbackSeesOwnHandleAsFired)
{
    EventQueue eq;
    EventHandle h;
    bool was_pending = true;
    h = eq.schedule(10, [&] {
        was_pending = h.pending();
        h.cancel(); // cancel-after-fire from inside: must be a no-op
    });
    eq.runAll();
    EXPECT_FALSE(was_pending);
    EXPECT_EQ(eq.eventsFired(), 1u);
}

// Release builds clamp a past tick to curTick(); debug builds panic.
// NDEBUG selects which contract this binary can observe.
#ifdef NDEBUG
TEST(EventQueue, ScheduleInPastClampsToNowInRelease)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(1);
        // Tick 40 is already in the past: fires at curTick()=100,
        // after everything already pending at this tick.
        eq.schedule(40, [&] { order.push_back(3); });
    });
    eq.schedule(100, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 100u);
}
#else
TEST(EventQueueDeathTest, ScheduleInPastPanicsInDebug)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(100, [] {});
            eq.runAll(); // curTick is now 100
            eq.schedule(40, [] {});
        },
        "scheduled in the past");
}
#endif

TEST(EventQueue, LargeCaptureFallsBackToHeapAndStillFires)
{
    // A capture bigger than the inline callback buffer exercises the
    // SmallFunction heap path end to end through schedule/fire.
    struct Big
    {
        std::uint64_t payload[40]; // 320 bytes > smallCallbackBytes
    };
    static_assert(sizeof(Big) > EventQueue::smallCallbackBytes);
    EventQueue eq;
    Big big{};
    big.payload[0] = 7;
    big.payload[39] = 11;
    std::uint64_t sum = 0;
    eq.schedule(5, [big, &sum] { sum = big.payload[0] + big.payload[39]; });
    eq.runAll();
    EXPECT_EQ(sum, 18u);
}

/**
 * Stress: random schedule/cancel churn checked against a naive
 * reference model. Catches slot-recycling and lazy-reclamation bugs
 * the targeted tests above can miss.
 */
TEST(EventQueue, ChurnMatchesNaiveReferenceModel)
{
    EventQueue eq;
    std::vector<std::pair<Tick, int>> expected; // (when, id) of live events
    std::vector<std::pair<Tick, int>> fired;
    std::vector<EventHandle> handles;
    std::vector<int> ids;

    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };

    int id = 0;
    for (int round = 0; round < 2000; ++round) {
        const std::uint64_t r = next();
        if (r % 4 != 0 || handles.empty()) {
            const Tick when = eq.curTick() + (next() % 50);
            const int my_id = id++;
            handles.push_back(eq.schedule(
                when, [&fired, &eq, my_id] {
                    fired.emplace_back(eq.curTick(), my_id);
                }));
            ids.push_back(my_id);
            expected.emplace_back(when, my_id);
        } else {
            const std::size_t pick = next() % handles.size();
            if (handles[pick].pending()) {
                handles[pick].cancel();
                const int victim = ids[pick];
                std::erase_if(expected, [victim](const auto &e) {
                    return e.second == victim;
                });
            }
        }
        if (r % 7 == 0)
            eq.step();
    }
    eq.runAll();

    // Model: every un-cancelled event fires exactly once, in
    // (when, schedule-order) order. Ids are assigned in schedule
    // order, so sorting the surviving schedules by (when, id) yields
    // the exact expected firing sequence — schedule() only accepts
    // when >= curTick, so no later schedule can jump ahead of an
    // earlier one at the same tick.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         if (a.first != b.first)
                             return a.first < b.first;
                         return a.second < b.second;
                     });
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueWheel, ScheduleAtNowFiresImmediately)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll(); // curTick = 100
    int fired = 0;
    eq.schedule(eq.curTick(), [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueueWheel, FarFutureEventsSpillToOverflowAndRefill)
{
    // Deltas beyond kWheelHorizon cannot be indexed by the wheel; they
    // park in the overflow heap and must drain back in time order as
    // the wheel position crosses into their block.
    EventQueue eq;
    std::vector<int> order;
    const Tick horizon = EventQueue::kWheelHorizon;
    eq.schedule(3 * horizon + 17, [&] { order.push_back(3); });
    eq.schedule(horizon + 5, [&] { order.push_back(2); });
    eq.schedule(42, [&] { order.push_back(1); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 3 * horizon + 17);
}

TEST(EventQueueWheel, OverflowRefillPreservesSameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick when = EventQueue::kWheelHorizon * 2 + 9;
    for (int i = 0; i < 8; ++i)
        eq.schedule(when, [&order, i] { order.push_back(i); });
    eq.runAll();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueWheel, CancelWorksInWheelAndInOverflow)
{
    EventQueue eq;
    int fired = 0;
    // One event in a wheel bucket (eagerly unlinked on cancel), one in
    // the overflow heap (lazily reclaimed when it surfaces).
    EventHandle in_wheel = eq.schedule(10, [&] { ++fired; });
    EventHandle in_overflow =
        eq.schedule(EventQueue::kWheelHorizon + 1, [&] { ++fired; });
    eq.schedule(EventQueue::kWheelHorizon + 2, [&] { fired += 10; });
    EXPECT_EQ(eq.size(), 3u);
    in_wheel.cancel();
    in_overflow.cancel();
    EXPECT_EQ(eq.size(), 1u);
    eq.runAll();
    EXPECT_EQ(fired, 10); // only the surviving overflow event fired
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueWheel, SameTickFifoAcrossCascade)
{
    // Event 0 is scheduled far ahead (a high wheel level) and must
    // cascade down as time advances; event 1 targets the same tick but
    // is scheduled late enough to land directly in a low level. FIFO
    // demands schedule order — the cascaded event first.
    EventQueue eq;
    std::vector<int> order;
    const Tick when = 100'000;
    eq.schedule(when, [&] { order.push_back(0); });
    eq.schedule(when - 50, [&] {
        eq.schedule(when, [&] { order.push_back(1); });
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueueWheel, ScheduleAfterIdleAdvanceLandsCorrectly)
{
    // run(limit) past the last event moves curTick without any bucket
    // cursor work; the next schedules must still index correctly.
    EventQueue eq;
    eq.run(123'456'789);
    EXPECT_EQ(eq.curTick(), 123'456'789u);
    std::vector<int> order;
    eq.schedule(eq.curTick() + 1, [&] { order.push_back(1); });
    eq.schedule(eq.curTick() + 5000, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueHeap, HeapKindMatchesWheelSemantics)
{
    // The heap kind is the differential oracle: same API, same firing
    // order, including cancel and same-tick FIFO.
    EventQueue eq(EventQueueKind::heap);
    std::vector<int> order;
    EventHandle doomed = eq.schedule(15, [&] { order.push_back(99); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.schedule(10, [&] { order.push_back(0); });
    eq.schedule(20, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    doomed.cancel();
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 20u);
    EXPECT_EQ(eq.eventsFired(), 4u);
}

/**
 * Differential oracle: one deterministic schedule/cancel/step stream
 * driven through the wheel and the heap kinds must produce identical
 * firing sequences — the wheel's bucket-and-cascade machinery may
 * never reorder anything relative to the plain (when, seq) heap.
 */
TEST(EventQueue, WheelMatchesHeapUnderChurn)
{
    EventQueue wheel(EventQueueKind::wheel);
    EventQueue heap(EventQueueKind::heap);
    std::vector<std::pair<Tick, int>> fired_wheel, fired_heap;
    std::vector<EventHandle> handles_wheel, handles_heap;

    std::uint64_t x = 0x2545f4914f6cdd1dULL;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };

    int id = 0;
    for (int round = 0; round < 3000; ++round) {
        const std::uint64_t r = next();
        if (r % 5 != 0 || handles_wheel.empty()) {
            // Mixed horizons: mostly short, some mid, a few beyond the
            // wheel horizon (overflow), to hit every placement path.
            Tick delta;
            const std::uint64_t d = next();
            switch (d % 16) {
              case 0:
                delta = EventQueue::kWheelHorizon + d % 1000;
                break;
              case 1:
              case 2:
                delta = d % 3'000'000;
                break;
              default:
                delta = d % 200;
                break;
            }
            const int my_id = id++;
            const Tick when_wheel = wheel.curTick() + delta;
            handles_wheel.push_back(wheel.schedule(
                when_wheel, [&fired_wheel, &wheel, my_id] {
                    fired_wheel.emplace_back(wheel.curTick(), my_id);
                }));
            handles_heap.push_back(heap.schedule(
                heap.curTick() + delta, [&fired_heap, &heap, my_id] {
                    fired_heap.emplace_back(heap.curTick(), my_id);
                }));
        } else {
            const std::size_t pick = next() % handles_wheel.size();
            handles_wheel[pick].cancel();
            handles_heap[pick].cancel();
        }
        if (r % 3 == 0) {
            wheel.step();
            heap.step();
        }
    }
    wheel.runAll();
    heap.runAll();
    EXPECT_EQ(fired_wheel, fired_heap);
    EXPECT_EQ(wheel.eventsFired(), heap.eventsFired());
    EXPECT_TRUE(wheel.empty());
    EXPECT_TRUE(heap.empty());
}

/** Property: N randomly-ordered events fire in nondecreasing time. */
class EventQueueOrderProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueueOrderProperty, MonotoneFiringTimes)
{
    EventQueue eq;
    std::vector<Tick> fired_at;
    std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 2654435761u;
    for (int i = 0; i < 200; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const Tick when = (x >> 33) % 1000;
        eq.schedule(when, [&fired_at, &eq] {
            fired_at.push_back(eq.curTick());
        });
    }
    eq.runAll();
    ASSERT_EQ(fired_at.size(), 200u);
    for (std::size_t i = 1; i < fired_at.size(); ++i)
        EXPECT_LE(fired_at[i - 1], fired_at[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

} // namespace
